// Package codegen is the microcode generator of Figure 3: it consumes
// the semantic data structures created by the graphical editor (the
// diagram document), invokes the checker "to perform a thorough check
// of global constraints", assigns diagram icons to physical hardware,
// derives switch settings "by interrogating the connection tables built
// by the graphical editor" (§5), balances stream timing with
// register-file delays, and emits executable NSC microcode.
package codegen

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/diag"
	"repro/internal/diagram"
	"repro/internal/microcode"
)

// Generator translates diagram documents into microcode programs.
type Generator struct {
	Inv *arch.Inventory
	F   *microcode.Format
	Chk *checker.Checker
	// Workers bounds concurrent pipeline elaboration in Lower and
	// concurrent documents in Documents (0 or 1: sequential). Parallel
	// output is identical to sequential — elaboration state is
	// per-pipeline.
	Workers int
}

// New returns a generator (and its embedded checker) for the inventory.
func New(inv *arch.Inventory) *Generator {
	return &Generator{Inv: inv, F: microcode.MustFormat(inv.Cfg), Chk: checker.New(inv)}
}

// CheckError carries the checker diagnostics that aborted generation.
type CheckError struct {
	Diags []checker.Diagnostic
}

func (e *CheckError) Error() string {
	msgs := make([]string, 0, len(e.Diags))
	for _, d := range e.Diags {
		msgs = append(msgs, d.String())
	}
	return fmt.Sprintf("codegen: %d checker error(s):\n%s", len(e.Diags), strings.Join(msgs, "\n"))
}

// PipeInfo reports what one pipeline elaborated to.
type PipeInfo struct {
	Pipe      int
	VectorLen int64
	// FillCycles is the pipeline depth: cycles before the first result
	// reaches the deepest sink.
	FillCycles int
	// FUsUsed counts physical functional units carrying an operation.
	FUsUsed int
	// FLOPsPerElement is the floating-point work per vector element.
	FLOPsPerElement int
	// ALSMap records which physical ALS each ALS icon received.
	ALSMap map[diagram.IconID]arch.ALSID
	// SDUMap records physical shift/delay unit assignment.
	SDUMap map[diagram.IconID]int
}

// Report aggregates generation results for a document.
type Report struct {
	Warnings []checker.Diagnostic
	Pipes    []PipeInfo
}

// elaboration is the working state for one pipeline.
type elaboration struct {
	g    *Generator
	doc  *diagram.Document
	p    *diagram.Pipeline
	an   *checker.Analysis
	in   *microcode.Instr
	info PipeInfo

	consts   map[float64]int
	padSrc   map[diagram.PadRef]arch.SourceID
	unitOf   map[diagram.IconID][]arch.FUID
	sduOf    map[diagram.IconID]int
	tapIndex map[diagram.PadRef]int
}

// Pipeline elaborates a single diagram into one microcode instruction
// (without sequencer fields, which belong to the control flow). The
// returned instruction has CondHalt set so it is runnable standalone.
func (g *Generator) Pipeline(doc *diagram.Document, p *diagram.Pipeline) (*microcode.Instr, *PipeInfo, error) {
	diags := g.Chk.CheckPipeline(doc, p)
	if es := checker.Errors(diags); len(es) > 0 {
		return nil, nil, &CheckError{Diags: es}
	}
	an, cyc := g.Chk.Analyze(doc, p)
	if len(cyc) > 0 {
		return nil, nil, &CheckError{Diags: cyc}
	}
	e := &elaboration{
		g: g, doc: doc, p: p, an: an, in: g.F.NewInstr(),
		info:   PipeInfo{Pipe: p.ID, VectorLen: an.VectorLen, ALSMap: map[diagram.IconID]arch.ALSID{}, SDUMap: map[diagram.IconID]int{}},
		consts: map[float64]int{}, padSrc: map[diagram.PadRef]arch.SourceID{},
		unitOf: map[diagram.IconID][]arch.FUID{}, sduOf: map[diagram.IconID]int{},
		tapIndex: map[diagram.PadRef]int{},
	}
	if err := e.assignHardware(); err != nil {
		return nil, nil, err
	}
	if err := e.emit(); err != nil {
		return nil, nil, err
	}
	e.in.SetSeq(microcode.Seq{Cond: microcode.CondHalt})
	if p.Compare != nil {
		if err := e.emitCompare(); err != nil {
			return nil, nil, err
		}
	}
	return e.in, &e.info, nil
}

// assignHardware maps ALS icons to physical ALSs of the right kind and
// SDU icons to physical shift/delay units, in icon order.
func (e *elaboration) assignHardware() error {
	free := map[arch.ALSKind][]arch.ALSID{
		arch.Singlet: e.g.Inv.ALSByKind(arch.Singlet),
		arch.Doublet: e.g.Inv.ALSByKind(arch.Doublet),
		arch.Triplet: e.g.Inv.ALSByKind(arch.Triplet),
	}
	sduNext := 0
	for _, ic := range e.p.Icons {
		if kind, ok := ic.Kind.ALSKind(); ok {
			pool := free[kind]
			if len(pool) == 0 {
				return diag.Errorf(diag.RuleGenResource, "codegen: out of %ss for icon %q", kind, ic.Name)
			}
			als := pool[0]
			free[kind] = pool[1:]
			e.info.ALSMap[ic.ID] = als
			units := make([]arch.FUID, ic.Kind.ActiveUnits())
			for slot := range units {
				fu, err := e.g.Inv.UnitAt(als, slot)
				if err != nil {
					return diag.Errorf(diag.RuleGenResource, "codegen: %v", err)
				}
				units[slot] = fu.ID
			}
			e.unitOf[ic.ID] = units
			continue
		}
		if ic.Kind == diagram.IconSDU {
			if sduNext >= e.g.Inv.Cfg.ShiftDelayUnits {
				return diag.Errorf(diag.RuleGenResource, "codegen: out of shift/delay units for icon %q", ic.Name)
			}
			e.sduOf[ic.ID] = sduNext
			e.info.SDUMap[ic.ID] = sduNext
			sduNext++
		}
	}
	return nil
}

// constSlot interns a constant into the instruction's pool.
func (e *elaboration) constSlot(v float64) (int, error) {
	if k, ok := e.consts[v]; ok {
		return k, nil
	}
	k := len(e.consts)
	if k >= microcode.ConstPoolSize {
		return 0, diag.Errorf(diag.RuleGenResource, "codegen: more than %d distinct constants in one instruction", microcode.ConstPoolSize)
	}
	e.consts[v] = k
	e.in.SetConst(k, v)
	return k, nil
}

// sourceOf resolves a producing pad to its switch source port.
func (e *elaboration) sourceOf(pr diagram.PadRef) (arch.SourceID, error) {
	if s, ok := e.padSrc[pr]; ok {
		return s, nil
	}
	ic, err := e.p.Icon(pr.Icon)
	if err != nil {
		return arch.InvalidSource, err
	}
	cfg := e.g.Inv.Cfg
	var src arch.SourceID
	switch ic.Kind {
	case diagram.IconMemPlane:
		src = cfg.SrcMemRead(ic.Plane)
	case diagram.IconCache:
		src = cfg.SrcCacheRead(ic.Plane)
	case diagram.IconSDU:
		u := e.sduOf[ic.ID]
		t, ok := e.tapIndex[pr]
		if !ok {
			return arch.InvalidSource, diag.Errorf(diag.RuleGenStruct, "codegen: tap %s not configured", pr)
		}
		src = cfg.SrcSDUTap(u, t)
	default:
		slot, side, ok := diagram.UnitPad(pr.Pad)
		if !ok || side != 2 {
			return arch.InvalidSource, diag.Errorf(diag.RuleGenStruct, "codegen: %s is not a producing pad", pr)
		}
		src = cfg.SrcFUOut(e.unitOf[ic.ID][slot])
	}
	e.padSrc[pr] = src
	return src, nil
}

func (e *elaboration) emit() error {
	cfg := e.g.Inv.Cfg
	// Pre-register SDU tap indices: tap pad "t<i>" maps to physical
	// tap i directly (diagram taps are already physical positions).
	for _, ic := range e.p.Icons {
		if ic.Kind != diagram.IconSDU {
			continue
		}
		for t := range ic.Taps {
			pr := diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("t%d", t)}
			e.tapIndex[pr] = t
		}
	}

	// Function units: ops, operand bindings, reductions.
	for _, ic := range e.p.Icons {
		units, isALS := e.unitOf[ic.ID]
		if !isALS {
			continue
		}
		for slot, u := range ic.Units {
			if u.Op == arch.OpNop {
				continue
			}
			fu := units[slot]
			e.in.SetFUOp(fu, u.Op)
			e.info.FUsUsed++
			e.info.FLOPsPerElement += u.Op.Info().FLOPs
			outPad := diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.o", slot)}

			// Operand A.
			if wa := e.p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.a", slot)}); wa != nil {
				src, err := e.sourceOf(wa.From)
				if err != nil {
					return err
				}
				e.in.Route(cfg.SnkFUIn(fu, 0), src)
				e.in.SetFUInput(fu, 0, microcode.InSwitch, 0, e.an.HWDelayA[outPad])
			} else if u.ConstA != nil {
				k, err := e.constSlot(*u.ConstA)
				if err != nil {
					return err
				}
				e.in.SetFUInput(fu, 0, microcode.InConst, k, 0)
			}

			// Operand B.
			switch {
			case u.Reduce:
				k, err := e.constSlot(u.RedInit)
				if err != nil {
					return err
				}
				e.in.SetFUInput(fu, 1, microcode.InFeedback, 0, 0)
				e.in.SetFUReduce(fu, true, k)
			default:
				if wb := e.p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.b", slot)}); wb != nil {
					src, err := e.sourceOf(wb.From)
					if err != nil {
						return err
					}
					e.in.Route(cfg.SnkFUIn(fu, 1), src)
					e.in.SetFUInput(fu, 1, microcode.InSwitch, 0, e.an.HWDelayB[outPad])
				} else if u.ConstB != nil {
					k, err := e.constSlot(*u.ConstB)
					if err != nil {
						return err
					}
					e.in.SetFUInput(fu, 1, microcode.InConst, k, 0)
				}
			}
		}
	}

	// Shift/delay units.
	for _, ic := range e.p.Icons {
		if ic.Kind != diagram.IconSDU {
			continue
		}
		u := e.sduOf[ic.ID]
		if w := e.p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: "in"}); w != nil {
			src, err := e.sourceOf(w.From)
			if err != nil {
				return err
			}
			e.in.Route(cfg.SnkSDUIn(u), src)
			e.in.SetSDU(u, true, ic.Taps)
		}
	}

	// DMA channels and sink routing.
	for _, ic := range e.p.Icons {
		switch ic.Kind {
		case diagram.IconMemPlane:
			if ic.RdDMA != nil {
				addr, err := e.resolveAddr(ic, ic.RdDMA)
				if err != nil {
					return err
				}
				e.in.SetMemDMA(ic.Plane, microcode.MemDMA{
					Enable: true, Write: false, Addr: addr,
					Stride: ic.RdDMA.Stride, Count: ic.RdDMA.Count, Skip: ic.RdDMA.Skip,
				})
			}
			if ic.WrDMA != nil {
				w := e.p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: "wr"})
				if w == nil {
					return diag.Errorf(diag.RuleGenStruct, "codegen: %s write DMA without a wire", ic.Name)
				}
				src, err := e.sourceOf(w.From)
				if err != nil {
					return err
				}
				addr, err := e.resolveAddr(ic, ic.WrDMA)
				if err != nil {
					return err
				}
				e.in.Route(cfg.SnkMemWrite(ic.Plane), src)
				e.in.SetMemDMA(ic.Plane, microcode.MemDMA{
					Enable: true, Write: true, Addr: addr,
					Stride: ic.WrDMA.Stride, Count: ic.WrDMA.Count, Skip: ic.WrDMA.Skip,
					Start: e.an.L[w.From],
				})
			}
		case diagram.IconCache:
			if ic.RdDMA != nil {
				e.in.SetCacheDMA(ic.Plane, microcode.CacheDMA{
					Enable: true, Write: false, Buf: ic.RdDMA.Buf, Addr: ic.RdDMA.Offset,
					Stride: ic.RdDMA.Stride, Count: ic.RdDMA.Count, Skip: ic.RdDMA.Skip,
					Swap: ic.RdDMA.Swap,
				})
			}
			if ic.WrDMA != nil {
				w := e.p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: "wr"})
				if w == nil {
					return diag.Errorf(diag.RuleGenStruct, "codegen: %s write DMA without a wire", ic.Name)
				}
				src, err := e.sourceOf(w.From)
				if err != nil {
					return err
				}
				e.in.Route(cfg.SnkCacheWrite(ic.Plane), src)
				e.in.SetCacheDMA(ic.Plane, microcode.CacheDMA{
					Enable: true, Write: true, Buf: ic.WrDMA.Buf, Addr: ic.WrDMA.Offset,
					Stride: ic.WrDMA.Stride, Count: ic.WrDMA.Count, Skip: ic.WrDMA.Skip,
					Start: e.an.L[w.From], Swap: ic.WrDMA.Swap,
				})
			}
		}
	}

	// Fill latency: deepest epoch among sink drivers.
	fill := 0
	for _, ic := range e.p.Icons {
		if ic.Kind == diagram.IconMemPlane || ic.Kind == diagram.IconCache {
			if w := e.p.WireTo(diagram.PadRef{Icon: ic.ID, Pad: "wr"}); w != nil {
				if l := e.an.L[w.From]; l > fill {
					fill = l
				}
			}
		}
	}
	if fill == 0 {
		fill = e.an.MaxEpoch
	}
	e.info.FillCycles = fill
	return nil
}

// resolveAddr converts a DMA spec's variable+offset into a plane word
// address.
func (e *elaboration) resolveAddr(ic *diagram.Icon, spec *diagram.DMASpec) (int64, error) {
	if spec.Var == "" {
		return spec.Offset, nil
	}
	v, ok := e.doc.Decl(spec.Var)
	if !ok {
		return 0, diag.Errorf(diag.RuleGenStruct, "codegen: variable %q undeclared", spec.Var)
	}
	return v.Base + spec.Offset, nil
}

func (e *elaboration) emitCompare() error {
	cmp := e.p.Compare
	units := e.unitOf[cmp.Icon]
	k, err := e.constSlot(cmp.Threshold)
	if err != nil {
		return err
	}
	var op uint64
	switch cmp.Op {
	case "lt":
		op = microcode.CmpLT
	case "le":
		op = microcode.CmpLE
	case "gt":
		op = microcode.CmpGT
	case "ge":
		op = microcode.CmpGE
	default:
		return diag.Errorf(diag.RuleGenStruct, "codegen: compare op %q", cmp.Op)
	}
	s := e.in.SeqOf()
	s.CmpEnable = true
	s.CmpFU = units[cmp.Slot]
	s.CmpConst = k
	s.CmpOp = op
	s.CmpFlag = cmp.Flag
	e.in.SetSeq(s)
	return nil
}

// Document generates the full program: one instruction per flow op
// (pipelines may be referenced several times), with sequencer fields
// realizing the control-flow region. A document without flow ops
// degenerates to executing its pipelines in order and halting.
//
// Document is the composition of the three back-end pipeline passes —
// the document check, Lower, and Validate — kept as one call for
// callers that do not need the passes individually.
func (g *Generator) Document(doc *diagram.Document) (*microcode.Program, *Report, error) {
	docDiags := g.Chk.CheckDocument(doc)
	prog, rep, err := g.Finish(doc, docDiags)
	if err != nil {
		return nil, nil, err
	}
	return prog, rep, nil
}

// Finish runs the lower and validate passes over a document whose
// check pass already ran (docDiags are its findings): pipeline clients
// call it so the cached or freshly computed check is not repeated.
func (g *Generator) Finish(doc *diagram.Document, docDiags []checker.Diagnostic) (*microcode.Program, *Report, error) {
	if es := checker.Errors(docDiags); len(es) > 0 {
		return nil, nil, &CheckError{Diags: es}
	}
	prog, rep, err := g.Lower(doc)
	if err != nil {
		return nil, nil, err
	}
	rep.Warnings = docDiags
	if err := g.Validate(prog); err != nil {
		return nil, nil, err
	}
	return prog, rep, nil
}

// Validate is the validate pass: the generated program through the
// microcode format's structural validator, reported as a typed
// diagnostic on failure.
func (g *Generator) Validate(prog *microcode.Program) error {
	if err := prog.Validate(); err != nil {
		return diag.Errorf(diag.RuleGenStruct, "codegen: generated program invalid: %w", err)
	}
	return nil
}

// Documents lowers a batch of independent documents, concurrently when
// g.Workers > 1. Results are positional: progs[i], reps[i] and errs[i]
// belong to docs[i]. Each document runs the full Document composition.
func (g *Generator) Documents(docs []*diagram.Document) (progs []*microcode.Program, reps []*Report, errs []error) {
	progs = make([]*microcode.Program, len(docs))
	reps = make([]*Report, len(docs))
	errs = make([]error, len(docs))
	workers := g.Workers
	if workers <= 1 || len(docs) <= 1 {
		for i, doc := range docs {
			progs[i], reps[i], errs[i] = g.Document(doc)
		}
		return progs, reps, errs
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, doc := range docs {
		wg.Add(1)
		go func(i int, doc *diagram.Document) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			progs[i], reps[i], errs[i] = g.Document(doc)
		}(i, doc)
	}
	wg.Wait()
	return progs, reps, errs
}

// Lower is the codegen pass alone: elaborate an already-checked
// document into a microcode program, without re-running the document
// check or the final program validation. The caller fills the report's
// Warnings. With g.Workers > 1 the distinct pipelines elaborate
// concurrently — elaboration state is per-pipeline, so the result is
// identical to the sequential pass.
func (g *Generator) Lower(doc *diagram.Document) (*microcode.Program, *Report, error) {
	rep := &Report{}

	flow := doc.Flow
	if len(flow) == 0 {
		for i := range doc.Pipes {
			flow = append(flow, diagram.FlowOp{Pipe: i})
		}
		if len(flow) == 0 {
			return nil, nil, diag.Errorf(diag.RuleFlowGen, "codegen: document %q has no pipelines", doc.Name)
		}
		flow[len(flow)-1].Cond = diagram.CondHalt
	}

	// Elaborate each referenced pipeline once, in first-reference order.
	instrs := map[int]*microcode.Instr{}
	var pipeOrder []int
	var pipeRefs []*diagram.Pipeline
	seen := map[int]bool{}
	for _, op := range flow {
		if op.Pipe < 0 || seen[op.Pipe] {
			continue
		}
		seen[op.Pipe] = true
		p, err := doc.Pipe(op.Pipe)
		if err != nil {
			return nil, nil, err
		}
		pipeOrder = append(pipeOrder, op.Pipe)
		pipeRefs = append(pipeRefs, p)
	}
	type pipeOut struct {
		in   *microcode.Instr
		info *PipeInfo
		err  error
	}
	outs := make([]pipeOut, len(pipeOrder))
	if workers := g.Workers; workers > 1 && len(pipeOrder) > 1 {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for idx := range pipeOrder {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				outs[idx].in, outs[idx].info, outs[idx].err = g.Pipeline(doc, pipeRefs[idx])
			}(idx)
		}
		wg.Wait()
	} else {
		for idx := range pipeOrder {
			outs[idx].in, outs[idx].info, outs[idx].err = g.Pipeline(doc, pipeRefs[idx])
			if outs[idx].err != nil {
				break
			}
		}
	}
	for idx, id := range pipeOrder {
		if outs[idx].err != nil {
			// First flow-order failure wins, matching sequential.
			return nil, nil, outs[idx].err
		}
		if outs[idx].in == nil {
			// Sequential pass stopped at an earlier error.
			break
		}
		instrs[id] = outs[idx].in
		rep.Pipes = append(rep.Pipes, *outs[idx].info)
	}

	labels := map[string]int{}
	for i, op := range flow {
		if op.Label != "" {
			labels[op.Label] = i
		}
	}
	prog := microcode.NewProgram(g.F)
	for i, op := range flow {
		var in *microcode.Instr
		if op.Pipe >= 0 {
			in = instrs[op.Pipe].Clone()
		} else {
			in = g.F.NewInstr()
		}
		s := in.SeqOf()
		s.Flag = op.Flag
		switch op.Cond {
		case diagram.CondHalt:
			s.Cond = microcode.CondHalt
		case diagram.CondAlways:
			s.Cond = microcode.CondAlways
		case diagram.CondFlagSet:
			s.Cond = microcode.CondFlagSet
		case diagram.CondFlagClear:
			s.Cond = microcode.CondFlagClear
		case diagram.CondLoop:
			s.Cond = microcode.CondLoop
		}
		s.Ctr = op.Ctr
		s.CtrLoad = op.CtrLoad
		s.CtrValue = op.CtrValue
		next := i + 1
		if op.Next != "" {
			next = labels[op.Next]
		}
		if next >= len(flow) && op.Cond != diagram.CondHalt {
			// Falling off the end halts.
			if op.Cond == diagram.CondAlways {
				s.Cond = microcode.CondHalt
				next = i
			} else {
				return nil, nil, diag.Errorf(diag.RuleFlowGen, "codegen: flow op %d falls off the end of the program", i)
			}
		}
		s.Next = next
		if op.Branch != "" {
			s.Branch = labels[op.Branch]
		}
		p, err := doc.Pipe(op.Pipe)
		if err == nil && p.IRQ {
			s.IRQ = true
		}
		in.SetSeq(s)
		prog.Append(in)
	}
	return prog, rep, nil
}
