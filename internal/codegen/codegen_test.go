package codegen

import (
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/diagram"
	"repro/internal/microcode"
	"repro/internal/sim"
)

func gen(t testing.TB) *Generator {
	t.Helper()
	return New(arch.MustInventory(arch.Default()))
}

// buildSAXPY: v = a*u + w, with a sum reduction and convergence compare.
func buildSAXPY(t testing.TB, a float64, count int64) (*diagram.Document, *diagram.Pipeline) {
	t.Helper()
	d := diagram.NewDocument("saxpy")
	d.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 100, Len: 4096})
	d.Declare(diagram.VarDecl{Name: "w", Plane: 1, Base: 200, Len: 4096})
	d.Declare(diagram.VarDecl{Name: "v", Plane: 2, Base: 300, Len: 4096})
	p := d.AddPipeline("saxpy")
	mu, _ := p.AddIcon(diagram.IconMemPlane, "Mu", 0, 2)
	mu.Plane = 0
	mu.RdDMA = &diagram.DMASpec{Var: "u", Stride: 1, Count: count}
	mw, _ := p.AddIcon(diagram.IconMemPlane, "Mw", 0, 8)
	mw.Plane = 1
	mw.RdDMA = &diagram.DMASpec{Var: "w", Stride: 1, Count: count}
	mv, _ := p.AddIcon(diagram.IconMemPlane, "Mv", 40, 5)
	mv.Plane = 2
	mv.WrDMA = &diagram.DMASpec{Var: "v", Stride: 1, Count: count}
	db, _ := p.AddIcon(diagram.IconDoublet, "D1", 20, 4)
	db.Units[0] = diagram.UnitConfig{Op: arch.OpMul, ConstB: &a}
	db.Units[1] = diagram.UnitConfig{Op: arch.OpAdd}
	rg, _ := p.AddIcon(diagram.IconSinglet, "R1", 30, 10)
	rg.Units[0] = diagram.UnitConfig{Op: arch.OpAdd, Reduce: true}

	conn := func(fi *diagram.Icon, fp string, ti *diagram.Icon, tp string) {
		t.Helper()
		if _, err := p.Connect(diagram.PadRef{Icon: fi.ID, Pad: fp}, diagram.PadRef{Icon: ti.ID, Pad: tp}, 0); err != nil {
			t.Fatal(err)
		}
	}
	conn(mu, "rd", db, "u0.a")
	conn(db, "u0.o", db, "u1.a")
	conn(mw, "rd", db, "u1.b")
	conn(db, "u1.o", mv, "wr")
	conn(db, "u1.o", rg, "u0.a")
	p.Compare = &diagram.CompareSpec{Icon: rg.ID, Slot: 0, Op: "gt", Threshold: 100, Flag: 3}
	return d, p
}

func TestPipelineGeneratesRunnableMicrocode(t *testing.T) {
	g := gen(t)
	d, p := buildSAXPY(t, 2.0, 500)
	in, info, err := g.Pipeline(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if info.FUsUsed != 3 {
		t.Errorf("FUs used = %d, want 3", info.FUsUsed)
	}
	if info.VectorLen != 500 {
		t.Errorf("vector len = %d", info.VectorLen)
	}
	if info.FillCycles <= 0 {
		t.Errorf("fill cycles = %d", info.FillCycles)
	}
	if info.FLOPsPerElement != 3 {
		t.Errorf("FLOPs/element = %d, want 3 (mul+add+reduce-add)", info.FLOPsPerElement)
	}

	// Execute: v[i] = 2*u[i] + w[i].
	n := sim.MustNode(arch.Default())
	u := make([]float64, 500)
	w := make([]float64, 500)
	for i := range u {
		u[i] = float64(i)
		w[i] = 1000 - float64(i)
	}
	if err := n.WriteWords(0, 100, u); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteWords(1, 200, w); err != nil {
		t.Fatal(err)
	}
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	got, _ := n.ReadWords(2, 300, 500)
	for i := range got {
		want := 2*u[i] + w[i]
		if got[i] != want {
			t.Fatalf("v[%d] = %v, want %v", i, got[i], want)
		}
	}
	// Reduction: Σ(2u+w) = Σ(i + 1000) = 500*1000 + Σi.
	var wantSum float64
	for i := range u {
		wantSum += 2*u[i] + w[i]
	}
	// Flag 3 set since sum > 100.
	if !n.Flag(3) {
		t.Error("compare flag not set")
	}
	_ = wantSum
}

func TestPipelineRefusesBrokenDiagram(t *testing.T) {
	g := gen(t)
	d, p := buildSAXPY(t, 2.0, 500)
	db, _ := p.IconByName("D1")
	if err := p.Disconnect(diagram.PadRef{Icon: db.ID, Pad: "u1.b"}); err != nil {
		t.Fatal(err)
	}
	_, _, err := g.Pipeline(d, p)
	if err == nil {
		t.Fatal("broken diagram generated")
	}
	ce, ok := err.(*CheckError)
	if !ok {
		t.Fatalf("error type %T, want *CheckError", err)
	}
	if len(ce.Diags) == 0 || !strings.Contains(ce.Error(), "R011") {
		t.Errorf("CheckError lacks rule detail: %v", ce)
	}
}

func TestTimingBalancedAgainstDeepPaths(t *testing.T) {
	// u0.o (mul, lat 4) joins mem (lat 0) at the adder: the generator
	// must insert the balancing delay the paper's users computed by
	// hand, and the simulated result must equal the ideal semantics.
	g := gen(t)
	d, p := buildSAXPY(t, 3.0, 64)
	in, _, err := g.Pipeline(d, p)
	if err != nil {
		t.Fatal(err)
	}
	// Find the adder's B input hardware delay: the doublet maps to the
	// first physical doublet, whose units follow the 4 triplets
	// (FU 12, 13).
	kind, _, delay := in.FUInput(13, 1)
	if kind != microcode.InSwitch {
		t.Fatalf("adder B kind = %v", kind)
	}
	if delay != arch.OpMul.Info().Latency {
		t.Errorf("adder B delay = %d, want mul latency %d", delay, arch.OpMul.Info().Latency)
	}
}

func TestWireDelayBecomesElementShift(t *testing.T) {
	// v[i] = u[i] - u[i-1] via a wire delay of 1 on the B side.
	g := gen(t)
	d := diagram.NewDocument("diff")
	d.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 0, Len: 128})
	d.Declare(diagram.VarDecl{Name: "v", Plane: 1, Base: 0, Len: 128})
	p := d.AddPipeline("diff")
	mu, _ := p.AddIcon(diagram.IconMemPlane, "Mu", 0, 0)
	mu.Plane = 0
	mu.RdDMA = &diagram.DMASpec{Var: "u", Stride: 1, Count: 100}
	mv, _ := p.AddIcon(diagram.IconMemPlane, "Mv", 0, 0)
	mv.Plane = 1
	mv.WrDMA = &diagram.DMASpec{Var: "v", Stride: 1, Count: 99, Skip: 1}
	s, _ := p.AddIcon(diagram.IconSinglet, "S", 0, 0)
	s.Units[0] = diagram.UnitConfig{Op: arch.OpSub}
	if _, err := p.Connect(diagram.PadRef{Icon: mu.ID, Pad: "rd"}, diagram.PadRef{Icon: s.ID, Pad: "u0.a"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Connect(diagram.PadRef{Icon: mu.ID, Pad: "rd"}, diagram.PadRef{Icon: s.ID, Pad: "u0.b"}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Connect(diagram.PadRef{Icon: s.ID, Pad: "u0.o"}, diagram.PadRef{Icon: mv.ID, Pad: "wr"}, 0); err != nil {
		t.Fatal(err)
	}
	in, _, err := g.Pipeline(d, p)
	if err != nil {
		t.Fatal(err)
	}
	n := sim.MustNode(arch.Default())
	u := make([]float64, 100)
	for i := range u {
		u[i] = float64(i * i)
	}
	if err := n.WriteWords(0, 0, u); err != nil {
		t.Fatal(err)
	}
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	got, _ := n.ReadWords(1, 0, 99)
	for i := 0; i < 99; i++ {
		// Element e = i+1 of the output stream: u[e] - u[e-1].
		want := u[i+1] - u[i]
		if got[i] != want {
			t.Fatalf("diff[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestSDUPipelineEndToEnd(t *testing.T) {
	// Three-point moving sum via SDU taps 0,1,2: out[j] = u[j]+u[j+1]+u[j+2].
	g := gen(t)
	d := diagram.NewDocument("sdu3")
	d.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 0, Len: 256})
	d.Declare(diagram.VarDecl{Name: "v", Plane: 1, Base: 0, Len: 256})
	p := d.AddPipeline("sum3")
	mu, _ := p.AddIcon(diagram.IconMemPlane, "Mu", 0, 0)
	mu.Plane = 0
	mu.RdDMA = &diagram.DMASpec{Var: "u", Stride: 1, Count: 100}
	z, _ := p.AddIcon(diagram.IconSDU, "Z", 0, 0)
	z.Taps = []int{0, 1, 2}
	a1, _ := p.AddIcon(diagram.IconDoublet, "A", 0, 0)
	a1.Units[0] = diagram.UnitConfig{Op: arch.OpAdd}
	a1.Units[1] = diagram.UnitConfig{Op: arch.OpAdd}
	mv, _ := p.AddIcon(diagram.IconMemPlane, "Mv", 0, 0)
	mv.Plane = 1
	// Deepest tap delay is 2: output element e corresponds to u[e-2] at
	// tap 2 and u[e] at tap 0 — the moving window ending at e. Valid
	// windows start at e=2.
	mv.WrDMA = &diagram.DMASpec{Var: "v", Stride: 1, Count: 98, Skip: 2}
	conn := func(fi *diagram.Icon, fp string, ti *diagram.Icon, tp string, delay int) {
		t.Helper()
		if _, err := p.Connect(diagram.PadRef{Icon: fi.ID, Pad: fp}, diagram.PadRef{Icon: ti.ID, Pad: tp}, delay); err != nil {
			t.Fatal(err)
		}
	}
	conn(mu, "rd", z, "in", 0)
	// Taps carry intrinsic shifts: tap k's stream element e = u[e-k].
	// To sum u[e], u[e-1], u[e-2] no wire delays are needed: tap
	// streams are already aligned element-for-element.
	conn(z, "t0", a1, "u0.a", 0)
	conn(z, "t1", a1, "u0.b", 0)
	conn(a1, "u0.o", a1, "u1.a", 0)
	conn(z, "t2", a1, "u1.b", 0)
	conn(a1, "u1.o", mv, "wr", 0)
	in, _, err := g.Pipeline(d, p)
	if err != nil {
		t.Fatal(err)
	}
	n := sim.MustNode(arch.Default())
	u := make([]float64, 100)
	for i := range u {
		u[i] = float64(i + 1)
	}
	if err := n.WriteWords(0, 0, u); err != nil {
		t.Fatal(err)
	}
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	got, _ := n.ReadWords(1, 0, 98)
	for j := 0; j < 98; j++ {
		e := j + 2
		want := u[e] + u[e-1] + u[e-2]
		if got[j] != want {
			t.Fatalf("sum3[%d] = %v, want %v", j, got[j], want)
		}
	}
}

func TestConstPoolOverflow(t *testing.T) {
	g := gen(t)
	d := diagram.NewDocument("consts")
	d.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 0, Len: 128})
	p := d.AddPipeline("c")
	mu, _ := p.AddIcon(diagram.IconMemPlane, "Mu", 0, 0)
	mu.Plane = 0
	mu.RdDMA = &diagram.DMASpec{Var: "u", Stride: 1, Count: 10}
	prev := diagram.PadRef{Icon: mu.ID, Pad: "rd"}
	// Chain 9 units each with a distinct constant: 9 > 8 pool slots.
	names := []string{"T1", "T2", "T3"}
	slot := 0
	var icons []*diagram.Icon
	for _, nm := range names {
		ic, err := p.AddIcon(diagram.IconTriplet, nm, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		icons = append(icons, ic)
	}
	for k := 0; k < 9; k++ {
		ic := icons[k/3]
		s := k % 3
		cv := float64(k) + 0.5
		ic.Units[s] = diagram.UnitConfig{Op: arch.OpMul, ConstB: &cv}
		if _, err := p.Connect(prev, diagram.PadRef{Icon: ic.ID, Pad: mulPad(s, "a")}, 0); err != nil {
			t.Fatal(err)
		}
		prev = diagram.PadRef{Icon: ic.ID, Pad: mulPad(s, "o")}
		slot++
	}
	_, _, err := g.Pipeline(d, p)
	if err == nil {
		t.Fatal("9 distinct constants accepted into an 8-slot pool")
	}
	if !strings.Contains(err.Error(), "constants") {
		t.Errorf("unexpected error: %v", err)
	}
}

func mulPad(slot int, side string) string {
	return "u" + string(rune('0'+slot)) + "." + side
}

func TestConstInterning(t *testing.T) {
	// The same constant used twice occupies one pool slot.
	g := gen(t)
	d := diagram.NewDocument("intern")
	d.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 0, Len: 128})
	p := d.AddPipeline("c")
	mu, _ := p.AddIcon(diagram.IconMemPlane, "Mu", 0, 0)
	mu.Plane = 0
	mu.RdDMA = &diagram.DMASpec{Var: "u", Stride: 1, Count: 10}
	db, _ := p.AddIcon(diagram.IconDoublet, "D", 0, 0)
	c1, c2 := 7.0, 7.0
	db.Units[0] = diagram.UnitConfig{Op: arch.OpMul, ConstB: &c1}
	db.Units[1] = diagram.UnitConfig{Op: arch.OpAdd, ConstB: &c2}
	if _, err := p.Connect(diagram.PadRef{Icon: mu.ID, Pad: "rd"}, diagram.PadRef{Icon: db.ID, Pad: "u0.a"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Connect(diagram.PadRef{Icon: db.ID, Pad: "u0.o"}, diagram.PadRef{Icon: db.ID, Pad: "u1.a"}, 0); err != nil {
		t.Fatal(err)
	}
	in, _, err := g.Pipeline(d, p)
	if err != nil {
		t.Fatal(err)
	}
	_, ka, _ := in.FUInput(12, 1) // first doublet unit 0 = FU 12
	_, kb, _ := in.FUInput(13, 1)
	if ka != kb {
		t.Errorf("identical constants interned to different slots %d, %d", ka, kb)
	}
}

func TestDocumentFlowGeneration(t *testing.T) {
	g := gen(t)
	d, p := buildSAXPY(t, 1.0, 100)
	_ = p
	d.Flow = []diagram.FlowOp{
		{Label: "loop", Pipe: 0, Cond: diagram.CondFlagClear, Flag: 3, Branch: "loop"},
		{Pipe: -1, Cond: diagram.CondHalt},
	}
	prog, rep, err := g.Document(d)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 2 {
		t.Fatalf("program length %d, want 2", prog.Len())
	}
	if len(rep.Pipes) != 1 {
		t.Errorf("report pipes = %d", len(rep.Pipes))
	}
	s0 := prog.Instrs[0].SeqOf()
	if s0.Cond != microcode.CondFlagClear || s0.Branch != 0 || s0.Next != 1 {
		t.Errorf("instr 0 seq = %+v", s0)
	}
	if prog.Instrs[1].SeqOf().Cond != microcode.CondHalt {
		t.Error("instr 1 should halt")
	}

	// Execute: sum over 100 elements of (u+w) with u=w=1 → 200 > 100:
	// flag sets on first pass, loop exits after one iteration.
	n := sim.MustNode(arch.Default())
	ones := make([]float64, 100)
	for i := range ones {
		ones[i] = 1
	}
	if err := n.WriteWords(0, 100, ones); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteWords(1, 200, ones); err != nil {
		t.Fatal(err)
	}
	res, err := n.Run(prog, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 {
		t.Errorf("executed %d, want 2 (one compute + halt)", res.Executed)
	}
}

func TestDocumentWithoutFlowRunsPipesInOrder(t *testing.T) {
	g := gen(t)
	d, _ := buildSAXPY(t, 1.0, 10)
	prog, _, err := g.Document(d)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 1 {
		t.Fatalf("program length %d", prog.Len())
	}
	if prog.Instrs[0].SeqOf().Cond != microcode.CondHalt {
		t.Error("implicit flow should halt at the end")
	}
}

func TestDocumentEmptyFails(t *testing.T) {
	g := gen(t)
	d := diagram.NewDocument("empty")
	if _, _, err := g.Document(d); err == nil {
		t.Error("empty document generated")
	}
}

func TestDocumentChecksFlowReferences(t *testing.T) {
	g := gen(t)
	d, _ := buildSAXPY(t, 1.0, 10)
	d.Flow = []diagram.FlowOp{{Pipe: 9}}
	if _, _, err := g.Document(d); err == nil {
		t.Error("bad flow reference generated")
	}
}

func TestGeneratedProgramSurvivesValidateAndDisassemble(t *testing.T) {
	g := gen(t)
	d, _ := buildSAXPY(t, 2.0, 100)
	prog, _, err := g.Document(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	txt := prog.Disassemble()
	for _, want := range []string{"mul", "add", "M0.rd", "M2.wr", "reduce"} {
		if !strings.Contains(txt, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestBypassedDoubletUsesUnitZero(t *testing.T) {
	g := gen(t)
	d := diagram.NewDocument("byp")
	d.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 0, Len: 64})
	d.Declare(diagram.VarDecl{Name: "v", Plane: 1, Base: 0, Len: 64})
	p := d.AddPipeline("b")
	mu, _ := p.AddIcon(diagram.IconMemPlane, "Mu", 0, 0)
	mu.Plane = 0
	mu.RdDMA = &diagram.DMASpec{Var: "u", Stride: 1, Count: 32}
	mv, _ := p.AddIcon(diagram.IconMemPlane, "Mv", 0, 0)
	mv.Plane = 1
	mv.WrDMA = &diagram.DMASpec{Var: "v", Stride: 1, Count: 32}
	b, _ := p.AddIcon(diagram.IconDoubletBypass, "B", 0, 0)
	b.Units[0] = diagram.UnitConfig{Op: arch.OpAbs}
	if _, err := p.Connect(diagram.PadRef{Icon: mu.ID, Pad: "rd"}, diagram.PadRef{Icon: b.ID, Pad: "u0.a"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Connect(diagram.PadRef{Icon: b.ID, Pad: "u0.o"}, diagram.PadRef{Icon: mv.ID, Pad: "wr"}, 0); err != nil {
		t.Fatal(err)
	}
	in, info, err := g.Pipeline(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if info.FUsUsed != 1 {
		t.Errorf("FUs used = %d", info.FUsUsed)
	}
	// First doublet after 4 triplets: FU 12 active, FU 13 idle.
	if in.FUOp(12) != arch.OpAbs {
		t.Errorf("fu12 op = %v", in.FUOp(12))
	}
	if in.FUOp(13) != arch.OpNop {
		t.Errorf("bypassed unit fu13 op = %v", in.FUOp(13))
	}
	n := sim.MustNode(arch.Default())
	u := []float64{-1, 2, -3, 4}
	if err := n.WriteWords(0, 0, u); err != nil {
		t.Fatal(err)
	}
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	got, _ := n.ReadWords(1, 0, 4)
	for i := range u {
		if got[i] != math.Abs(u[i]) {
			t.Fatalf("abs[%d] = %v", i, got[i])
		}
	}
}

func TestCacheDiagramEndToEnd(t *testing.T) {
	g := gen(t)
	d := diagram.NewDocument("cache")
	d.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 0, Len: 64})
	p := d.AddPipeline("stage")
	mu, _ := p.AddIcon(diagram.IconMemPlane, "Mu", 0, 0)
	mu.Plane = 0
	mu.RdDMA = &diagram.DMASpec{Var: "u", Stride: 1, Count: 64}
	ch, _ := p.AddIcon(diagram.IconCache, "C3", 0, 0)
	ch.Plane = 3
	ch.WrDMA = &diagram.DMASpec{Stride: 1, Count: 64, Swap: true}
	s, _ := p.AddIcon(diagram.IconSinglet, "S", 0, 0)
	two := 2.0
	s.Units[0] = diagram.UnitConfig{Op: arch.OpMul, ConstB: &two}
	if _, err := p.Connect(diagram.PadRef{Icon: mu.ID, Pad: "rd"}, diagram.PadRef{Icon: s.ID, Pad: "u0.a"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Connect(diagram.PadRef{Icon: s.ID, Pad: "u0.o"}, diagram.PadRef{Icon: ch.ID, Pad: "wr"}, 0); err != nil {
		t.Fatal(err)
	}
	in, _, err := g.Pipeline(d, p)
	if err != nil {
		t.Fatal(err)
	}
	n := sim.MustNode(arch.Default())
	u := make([]float64, 64)
	for i := range u {
		u[i] = float64(i)
	}
	if err := n.WriteWords(0, 0, u); err != nil {
		t.Fatal(err)
	}
	if err := n.Exec(in); err != nil {
		t.Fatal(err)
	}
	// Written to buf 0, swapped: read back from buf 1.
	for i := 0; i < 64; i++ {
		v, err := n.Cache[3].Read(1, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if v != 2*u[i] {
			t.Fatalf("cache[%d] = %v, want %v", i, v, 2*u[i])
		}
	}
}

func TestDocumentFlowEdgeCases(t *testing.T) {
	g := gen(t)

	// IRQ pipelines propagate to the sequencer field.
	d, p := buildSAXPY(t, 1.0, 10)
	p.IRQ = true
	prog, _, err := g.Document(d)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Instrs[0].SeqOf().IRQ {
		t.Error("pipeline IRQ not propagated")
	}

	// A conditional op that falls off the end is an error.
	d2, _ := buildSAXPY(t, 1.0, 10)
	d2.Flow = []diagram.FlowOp{
		{Label: "x", Pipe: 0, Cond: diagram.CondFlagSet, Flag: 1, Branch: "x"},
	}
	if _, _, err := g.Document(d2); err == nil {
		t.Error("conditional falling off the end accepted")
	}

	// An unconditional final op quietly becomes a halt.
	d3, _ := buildSAXPY(t, 1.0, 10)
	d3.Flow = []diagram.FlowOp{{Pipe: 0, Cond: diagram.CondAlways}}
	prog3, _, err := g.Document(d3)
	if err != nil {
		t.Fatal(err)
	}
	if prog3.Instrs[0].SeqOf().Cond != microcode.CondHalt {
		t.Error("trailing always-op did not become a halt")
	}

	// Explicit next labels are honoured.
	d4, _ := buildSAXPY(t, 1.0, 10)
	d4.Flow = []diagram.FlowOp{
		{Label: "a", Pipe: 0, Next: "c"},
		{Label: "b", Pipe: 0, Cond: diagram.CondHalt},
		{Label: "c", Pipe: 0, Next: "b"},
	}
	prog4, _, err := g.Document(d4)
	if err != nil {
		t.Fatal(err)
	}
	if prog4.Instrs[0].SeqOf().Next != 2 {
		t.Errorf("next label resolved to %d, want 2", prog4.Instrs[0].SeqOf().Next)
	}
	if prog4.Instrs[2].SeqOf().Next != 1 {
		t.Errorf("c's next resolved to %d, want 1", prog4.Instrs[2].SeqOf().Next)
	}

	// The same pipeline referenced twice elaborates once but appears in
	// both instructions.
	d5, _ := buildSAXPY(t, 1.0, 10)
	d5.Flow = []diagram.FlowOp{
		{Pipe: 0},
		{Pipe: 0, Cond: diagram.CondHalt},
	}
	prog5, rep5, err := g.Document(d5)
	if err != nil {
		t.Fatal(err)
	}
	if prog5.Len() != 2 || len(rep5.Pipes) != 1 {
		t.Errorf("len=%d pipes-elaborated=%d", prog5.Len(), len(rep5.Pipes))
	}
}

func TestPipelineRejectsWriteWithoutWire(t *testing.T) {
	// A WrDMA icon whose wr pad is unwired fails at the checker before
	// codegen's own guard; both layers refuse.
	g := gen(t)
	d, p := buildSAXPY(t, 1.0, 10)
	mv, _ := p.IconByName("Mv")
	if err := p.Disconnect(diagram.PadRef{Icon: mv.ID, Pad: "wr"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Pipeline(d, p); err == nil {
		t.Error("write DMA without a wire accepted")
	}
}
