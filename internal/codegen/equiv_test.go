package codegen

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/diagram"
	"repro/internal/sim"
)

// TestRandomDiagramEquivalence is the central correctness property of
// the whole environment: for randomly generated (valid) pipeline
// diagrams, the microcode produced by the generator and executed by
// the cycle-faithful simulator computes exactly the diagram's ideal
// dataflow semantics — out[e] = op(inA[e−delayA], inB[e−delayB]) with
// zero padding — for every element. This closes the loop across
// editor-level semantics, timing elaboration, switch routing,
// register-file delay balancing and the simulator's clock model.
func TestRandomDiagramEquivalence(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		if err := runRandomDiagram(t, rng); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

type nodeRef struct {
	pad diagram.PadRef
	// eval returns the ideal value of logical element e.
	eval func(e int) float64
	// minValid is the first element whose value is fully defined:
	// earlier elements fall in the pipeline's warm-up region, where the
	// hardware delivers register-file preload zeros whose downstream
	// combination depends on structural epochs (implementation-defined;
	// real programs mask it with DMA skip, as the Jacobi solver does).
	minValid int
}

func runRandomDiagram(t *testing.T, rng *rand.Rand) error {
	t.Helper()
	cfg := arch.Default()
	gen := New(arch.MustInventory(cfg))
	const count = 40

	d := diagram.NewDocument("fuzz")
	p := d.AddPipeline("fuzz")

	// 1–3 source planes with ramp-ish data.
	nSrc := 1 + rng.Intn(3)
	var producers []nodeRef
	srcData := make([][]float64, nSrc)
	for s := 0; s < nSrc; s++ {
		data := make([]float64, count)
		for i := range data {
			data[i] = float64(i+1) * (1 + float64(s)*0.5)
		}
		srcData[s] = data
		name := fmt.Sprintf("src%d", s)
		d.Declare(diagram.VarDecl{Name: name, Plane: s, Base: 0, Len: count})
		ic, err := p.AddIcon(diagram.IconMemPlane, "M"+name, 0, s*6)
		if err != nil {
			return err
		}
		ic.Plane = s
		ic.RdDMA = &diagram.DMASpec{Var: name, Stride: 1, Count: count}
		data = srcData[s]
		producers = append(producers, nodeRef{
			pad: diagram.PadRef{Icon: ic.ID, Pad: "rd"},
			eval: func(e int) float64 {
				if e < 0 || e >= len(data) {
					return 0
				}
				return data[e]
			},
		})
	}

	// Random chain of float ops over previous producers. All chosen ops
	// are legal on every slot, so mapping always succeeds.
	ops := []arch.Op{arch.OpAdd, arch.OpSub, arch.OpMul, arch.OpMov, arch.OpNeg, arch.OpAbs}
	apply := map[arch.Op]func(a, b float64) float64{
		arch.OpAdd: func(a, b float64) float64 { return a + b },
		arch.OpSub: func(a, b float64) float64 { return a - b },
		arch.OpMul: func(a, b float64) float64 { return a * b },
		arch.OpMov: func(a, b float64) float64 { return a },
		arch.OpNeg: func(a, b float64) float64 { return -a },
		arch.OpAbs: func(a, b float64) float64 {
			if a < 0 {
				return -a
			}
			return a
		},
	}

	kinds := []diagram.IconKind{diagram.IconTriplet, diagram.IconDoublet, diagram.IconSinglet, diagram.IconDoubletBypass}
	limits := map[diagram.IconKind]int{
		diagram.IconTriplet: cfg.Triplets, diagram.IconDoublet: cfg.Doublets,
		diagram.IconSinglet: cfg.Singlets, diagram.IconDoubletBypass: 0,
	}
	placed := map[arch.ALSKind]int{}
	var curIcon *diagram.Icon
	slotNext := 0

	nUnits := 1 + rng.Intn(8)
	lastWireBMinValid := 0
	for u := 0; u < nUnits; u++ {
		// Find or place an icon with a free slot.
		if curIcon == nil || slotNext >= curIcon.Kind.ActiveUnits() {
			var kind diagram.IconKind
			for {
				kind = kinds[rng.Intn(len(kinds))]
				alsKind, _ := kind.ALSKind()
				limit := limits[kind]
				if kind == diagram.IconDoubletBypass {
					limit = cfg.Doublets
				}
				if placed[alsKind] < limit {
					placed[alsKind]++
					break
				}
			}
			ic, err := p.AddIcon(kind, fmt.Sprintf("A%d", u), 20+u*3, u*4)
			if err != nil {
				return err
			}
			curIcon = ic
			slotNext = 0
		}
		ic, slot := curIcon, slotNext
		slotNext++

		op := ops[rng.Intn(len(ops))]
		cfgU := diagram.UnitConfig{Op: op}
		arity := op.Info().Arity

		// Operand A: always a wire from a random prior producer.
		src := producers[rng.Intn(len(producers))]
		delayA := rng.Intn(4)
		if _, err := p.Connect(src.pad, diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.a", slot)}, delayA); err != nil {
			return err
		}
		evalA := src.eval

		// Operand B: wire or constant.
		var evalB func(e int) float64
		delayB := 0
		if arity >= 2 {
			if rng.Intn(3) == 0 {
				cv := float64(rng.Intn(7)) - 3
				cfgU.ConstB = &cv
				evalB = func(int) float64 { return cv }
			} else {
				srcB := producers[rng.Intn(len(producers))]
				delayB = rng.Intn(4)
				if _, err := p.Connect(srcB.pad, diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.b", slot)}, delayB); err != nil {
					return err
				}
				evalB = srcB.eval
				lastWireBMinValid = srcB.minValid
			}
		} else {
			evalB = func(int) float64 { return 0 }
		}
		ic.Units[slot] = cfgU

		fn := apply[op]
		dA, dB := delayA, delayB
		mv := src.minValid + dA
		if arity >= 2 && cfgU.ConstB == nil {
			// Wire-fed B: incorporate its horizon (recorded below).
			if h := lastWireBMinValid + dB; h > mv {
				mv = h
			}
		}
		producers = append(producers, nodeRef{
			pad: diagram.PadRef{Icon: ic.ID, Pad: fmt.Sprintf("u%d.o", slot)},
			eval: func(e int) float64 {
				return fn(evalA(e-dA), evalB(e-dB))
			},
			minValid: mv,
		})
	}

	// Sink: the last producer streams to a free plane.
	last := producers[len(producers)-1]
	outPlane := nSrc
	d.Declare(diagram.VarDecl{Name: "out", Plane: outPlane, Base: 0, Len: count})
	sink, err := p.AddIcon(diagram.IconMemPlane, "Mout", 60, 2)
	if err != nil {
		return err
	}
	sink.Plane = outPlane
	// Start the comparison past the warm-up horizon.
	skip := last.minValid + rng.Intn(3)
	sink.WrDMA = &diagram.DMASpec{Var: "out", Stride: 1, Count: int64(count - skip), Skip: int64(skip)}
	if _, err := p.Connect(last.pad, diagram.PadRef{Icon: sink.ID, Pad: "wr"}, 0); err != nil {
		return err
	}

	in, _, err := gen.Pipeline(d, p)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	node := sim.MustNode(cfg)
	for s := 0; s < nSrc; s++ {
		if err := node.WriteWords(s, 0, srcData[s]); err != nil {
			return err
		}
	}
	if err := node.Exec(in); err != nil {
		return fmt.Errorf("execute: %w", err)
	}
	got, err := node.ReadWords(outPlane, 0, count-skip)
	if err != nil {
		return err
	}
	for j := 0; j < count-skip; j++ {
		e := j + skip
		want := last.eval(e)
		if got[j] != want {
			return fmt.Errorf("element %d: simulated %g, ideal %g (units=%d, skip=%d)",
				e, got[j], want, nUnits, skip)
		}
	}
	return nil
}
