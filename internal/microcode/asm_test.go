package microcode

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

// buildRich constructs an instruction exercising every statement class.
func buildRich(t testing.TB, f *Format) *Instr {
	t.Helper()
	cfg := f.Cfg
	in := f.NewInstr()
	in.Route(cfg.SnkSDUIn(0), cfg.SrcMemRead(2))
	in.SetSDU(0, true, []int{0, 5, 64})
	in.Route(cfg.SnkFUIn(3, 0), cfg.SrcSDUTap(0, 1))
	in.SetFUOp(3, arch.OpMul)
	in.SetFUInput(3, 0, InSwitch, 0, 2)
	in.SetFUInput(3, 1, InConst, 1, 0)
	in.SetConst(1, 0.125)
	in.Route(cfg.SnkFUIn(4, 0), cfg.SrcFUOut(3))
	in.SetFUOp(4, arch.OpAdd)
	in.SetFUInput(4, 0, InSwitch, 0, 0)
	in.SetFUInput(4, 1, InFeedback, 0, 0)
	in.SetFUReduce(4, true, 2)
	in.SetConst(2, 0.0)
	in.SetMemDMA(2, MemDMA{Enable: true, Addr: 100, Stride: 2, Count: 50, Skip: 3})
	in.Route(cfg.SnkMemWrite(7), cfg.SrcFUOut(4))
	in.SetMemDMA(7, MemDMA{Enable: true, Write: true, Addr: 0, Stride: 1, Count: 40, Skip: 3, Start: 9})
	in.SetCacheDMA(5, CacheDMA{Enable: true, Buf: 1, Addr: 8, Stride: 1, Count: 16, Swap: true})
	in.SetSeq(Seq{Next: 2, Branch: 0, Cond: CondFlagSet, Flag: 3, IRQ: true,
		CmpEnable: true, CmpFU: 4, CmpConst: 1, CmpOp: CmpGE, CmpFlag: 3})
	return in
}

// TestAssembleDisassembleRoundTrip: the textual microassembler dialect
// is closed under Disassemble/Assemble — the baseline hand-coding
// workflow the paper deems impractical, but real.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	f := MustFormat(arch.Default())
	in := buildRich(t, f)
	txt := in.Disassemble()
	back, err := f.Assemble(strings.NewReader(txt))
	if err != nil {
		t.Fatalf("assemble:\n%s\nerror: %v", txt, err)
	}
	for lane := range in.W {
		if in.W[lane] != back.W[lane] {
			t.Fatalf("lane %d differs after round trip:\n%s\nvs reassembled:\n%s",
				lane, txt, back.Disassemble())
		}
	}
}

func TestAssembleProgramRoundTrip(t *testing.T) {
	f := MustFormat(arch.Default())
	p := NewProgram(f)
	p.Append(buildRich(t, f))
	second := f.NewInstr()
	second.SetFUOp(0, arch.OpNeg)
	second.SetFUInput(0, 0, InConst, 0, 0)
	second.SetConst(0, 4.5)
	second.SetSeq(Seq{Cond: CondHalt})
	p.Append(second)

	back, err := f.AssembleProgram(strings.NewReader(p.Disassemble()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip produced %d instructions", back.Len())
	}
	for i := range p.Instrs {
		for lane := range p.Instrs[i].W {
			if p.Instrs[i].W[lane] != back.Instrs[i].W[lane] {
				t.Fatalf("instr %d lane %d differs", i, lane)
			}
		}
	}
}

func TestAssembleStatements(t *testing.T) {
	f := MustFormat(arch.Default())
	src := `
# comment and blank lines are fine

route FU0.a <- M1.rd
fu0   mov    a=sw b=-
mem1  read  addr=10 stride=1 count=5 skip=0
seq   next=0 branch=0 cond=3 flag=0
`
	in, err := f.Assemble(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.FUOp(0) != arch.OpMov {
		t.Error("op not assembled")
	}
	if in.SinkSource(f.Cfg.SnkFUIn(0, 0)) != f.Cfg.SrcMemRead(1) {
		t.Error("route not assembled")
	}
	d := in.MemDMAOf(1)
	if !d.Enable || d.Addr != 10 || d.Count != 5 {
		t.Errorf("dma = %+v", d)
	}
	if in.SeqOf().Cond != CondHalt {
		t.Error("seq not assembled")
	}
}

func TestAssembleErrors(t *testing.T) {
	f := MustFormat(arch.Default())
	bad := []string{
		"frobnicate the switch",
		"route FU0.a -> M1.rd",
		"route FU0.a <- M99.rd",
		"route FU99.a <- M1.rd",
		"route FU0.a <- M1.rdX",
		"fu99 add",
		"fu0 notanop",
		"fu0 add a=xyz",
		"fu0 add a=const99",
		"fu0 add a=sw+zfoo",
		"fu0 add reduce(init=const99)",
		"fu0 add weird=1",
		"const99 = 1",
		"const0 == 1",
		"const0 = abc",
		"mem99 read addr=0 stride=1 count=1",
		"cache99 read addr=0 stride=1 count=1",
		"sdu9 taps=[1]",
		"sdu0 taps=(1)",
		"sdu0 taps=[x]",
		"seq cmp(fu1",
		"seq cmp(fux < const0 -> flag1)",
		"seq cmp(fu1 ~ const0 -> flag1)",
		"seq cmp(fu1 < constx -> flag1)",
		"seq cmp(fu1 < const0 => flag1)",
		"seq wat=1",
	}
	for _, src := range bad {
		if _, err := f.Assemble(strings.NewReader(src)); err == nil {
			t.Errorf("assembled %q", src)
		}
	}
	if _, err := f.AssembleProgram(strings.NewReader("")); err == nil {
		t.Error("empty listing assembled")
	}
}

func TestParsePortNamesExhaustive(t *testing.T) {
	f := MustFormat(arch.Default())
	cfg := f.Cfg
	// Every source name printed by SourceName parses back to itself.
	for s := 0; s < cfg.NumSources(); s++ {
		name := cfg.SourceName(arch.SourceID(s))
		got, err := f.parseSource(name)
		if err != nil {
			t.Fatalf("parseSource(%q): %v", name, err)
		}
		if got != arch.SourceID(s) {
			t.Fatalf("parseSource(%q) = %d, want %d", name, got, s)
		}
	}
	for s := 0; s < cfg.NumSinks(); s++ {
		name := cfg.SinkName(arch.SinkID(s))
		got, err := f.parseSink(name)
		if err != nil {
			t.Fatalf("parseSink(%q): %v", name, err)
		}
		if got != arch.SinkID(s) {
			t.Fatalf("parseSink(%q) = %d, want %d", name, got, s)
		}
	}
}
