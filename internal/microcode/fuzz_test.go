package microcode

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
)

// FuzzAssemble feeds arbitrary listings to the microassembler: never
// panic, and anything accepted must disassemble and reassemble to the
// same bits (the dialect is closed).
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"route FU0.a <- M1.rd\nfu0 mov a=sw b=-\n",
		"const3 = 2.5\nfu1 add a=const3 b=fb reduce(init=const3)\n",
		"mem0 read addr=0 stride=1 count=8 skip=0 start=0\n",
		"cache5 write buf=1 addr=2 stride=1 count=4 swap\n",
		"sdu0 taps=[1 2 3]\nseq next=0 branch=0 cond=3 flag=0 irq trap\n",
		"seq cmp(fu1 < const0 -> flag1)\n",
		"# only a comment\n",
		"fu99 add\nmem99 read\nroute X <- Y\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	fmt := MustFormat(arch.Default())
	f.Fuzz(func(t *testing.T, src string) {
		in, err := fmt.Assemble(strings.NewReader(src))
		if err != nil {
			return
		}
		// Accepted input: Disassemble → Assemble must be a fixpoint.
		txt := in.Disassemble()
		back, err := fmt.Assemble(strings.NewReader(txt))
		if err != nil {
			t.Fatalf("accepted %q but own disassembly rejected: %v\n%s", src, err, txt)
		}
		for lane := range in.W {
			if in.W[lane] != back.W[lane] {
				t.Fatalf("lane %d differs after round trip of %q", lane, src)
			}
		}
	})
}

// FuzzAsmRoundTrip drives the whole toolchain loop: assemble → encode
// to the binary container → decode → disassemble → reassemble. The
// decoded bits must match the assembled ones, and the disassembly must
// be a fixed point (reassembling it reproduces both the bits and the
// text), so listings survive any number of tool passes.
func FuzzAsmRoundTrip(f *testing.F) {
	seeds := []string{
		"route FU0.a <- M1.rd\nfu0 mov a=sw b=-\n",
		"const3 = 2.5\nfu1 add a=const3 b=fb reduce(init=const3)\n",
		"mem0 read addr=0 stride=1 count=8 skip=0 start=0\n",
		"cache5 write buf=1 addr=2 stride=1 count=4 swap\n",
		"sdu0 taps=[1 2 3]\nseq next=0 branch=0 cond=3 flag=0 irq trap\n",
		"fu0 add a=sw b=fb\nseq cmp(fu0 < const1 -> flag2)\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	format := MustFormat(arch.Default())
	f.Fuzz(func(t *testing.T, src string) {
		in, err := format.Assemble(strings.NewReader(src))
		if err != nil {
			return
		}
		// Encode through the binary container and decode it back.
		prog := NewProgram(format)
		prog.Append(in)
		var buf bytes.Buffer
		if _, err := prog.WriteTo(&buf); err != nil {
			t.Fatalf("assembled instruction does not encode: %v", err)
		}
		decoded, err := ReadProgram(&buf, format)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if decoded.Len() != 1 {
			t.Fatalf("decoded %d instructions, want 1", decoded.Len())
		}
		out := decoded.Instrs[0]
		for lane := range in.W {
			if out.W[lane] != in.W[lane] {
				t.Fatalf("lane %d differs after encode/decode of %q", lane, src)
			}
		}
		// Disassemble and reassemble: bits and text both fixed points.
		txt := out.Disassemble()
		back, err := format.Assemble(strings.NewReader(txt))
		if err != nil {
			t.Fatalf("decoded disassembly rejected: %v\n%s", err, txt)
		}
		for lane := range in.W {
			if back.W[lane] != in.W[lane] {
				t.Fatalf("lane %d differs after reassembly of %q", lane, src)
			}
		}
		if again := back.Disassemble(); again != txt {
			t.Fatalf("disassembly not a fixed point for %q:\n%s\nvs\n%s", src, txt, again)
		}
	})
}

// FuzzReadProgram feeds arbitrary bytes to the binary loader: errors,
// never panics, and every accepted program round-trips.
func FuzzReadProgram(f *testing.F) {
	fmt := MustFormat(arch.Default())
	good := NewProgram(fmt)
	in := fmt.NewInstr()
	in.SetFUOp(0, arch.OpAdd)
	in.SetSeq(Seq{Cond: CondHalt})
	good.Append(in)
	var buf bytes.Buffer
	if _, err := good.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("NSCM garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProgram(bytes.NewReader(data), fmt)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := p.WriteTo(&out); err != nil {
			t.Fatalf("accepted program does not serialize: %v", err)
		}
		back, err := ReadProgram(&out, fmt)
		if err != nil || back.Len() != p.Len() {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
