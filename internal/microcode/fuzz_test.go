package microcode

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
)

// FuzzAssemble feeds arbitrary listings to the microassembler: never
// panic, and anything accepted must disassemble and reassemble to the
// same bits (the dialect is closed).
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"route FU0.a <- M1.rd\nfu0 mov a=sw b=-\n",
		"const3 = 2.5\nfu1 add a=const3 b=fb reduce(init=const3)\n",
		"mem0 read addr=0 stride=1 count=8 skip=0 start=0\n",
		"cache5 write buf=1 addr=2 stride=1 count=4 swap\n",
		"sdu0 taps=[1 2 3]\nseq next=0 branch=0 cond=3 flag=0 irq trap\n",
		"seq cmp(fu1 < const0 -> flag1)\n",
		"# only a comment\n",
		"fu99 add\nmem99 read\nroute X <- Y\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	fmt := MustFormat(arch.Default())
	f.Fuzz(func(t *testing.T, src string) {
		in, err := fmt.Assemble(strings.NewReader(src))
		if err != nil {
			return
		}
		// Accepted input: Disassemble → Assemble must be a fixpoint.
		txt := in.Disassemble()
		back, err := fmt.Assemble(strings.NewReader(txt))
		if err != nil {
			t.Fatalf("accepted %q but own disassembly rejected: %v\n%s", src, err, txt)
		}
		for lane := range in.W {
			if in.W[lane] != back.W[lane] {
				t.Fatalf("lane %d differs after round trip of %q", lane, src)
			}
		}
	})
}

// FuzzReadProgram feeds arbitrary bytes to the binary loader: errors,
// never panics, and every accepted program round-trips.
func FuzzReadProgram(f *testing.F) {
	fmt := MustFormat(arch.Default())
	good := NewProgram(fmt)
	in := fmt.NewInstr()
	in.SetFUOp(0, arch.OpAdd)
	in.SetSeq(Seq{Cond: CondHalt})
	good.Append(in)
	var buf bytes.Buffer
	if _, err := good.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("NSCM garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProgram(bytes.NewReader(data), fmt)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := p.WriteTo(&out); err != nil {
			t.Fatalf("accepted program does not serialize: %v", err)
		}
		back, err := ReadProgram(&out, fmt)
		if err != nil || back.Len() != p.Len() {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
