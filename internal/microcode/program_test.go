package microcode

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
)

func sampleProgram(t testing.TB) *Program {
	t.Helper()
	cfg := arch.Default()
	f := MustFormat(cfg)
	p := NewProgram(f)
	for i := 0; i < 3; i++ {
		in := f.NewInstr()
		in.SetFUOp(arch.FUID(i), arch.OpAdd)
		in.SetConst(0, float64(i)*1.5)
		in.SetSeq(Seq{Next: (i + 1) % 3})
		p.Append(in)
	}
	last := p.Instrs[2]
	last.SetSeq(Seq{Cond: CondHalt})
	return p
}

func TestProgramAppendAt(t *testing.T) {
	p := sampleProgram(t)
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
	in, err := p.At(1)
	if err != nil || in.FUOp(1) != arch.OpAdd {
		t.Errorf("At(1): %v", err)
	}
	if _, err := p.At(-1); err == nil {
		t.Error("At(-1) should fail")
	}
	if _, err := p.At(3); err == nil {
		t.Error("At(3) should fail")
	}
}

func TestProgramValidate(t *testing.T) {
	p := sampleProgram(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	// Next target out of range.
	bad := sampleProgram(t)
	bad.Instrs[0].SetSeq(Seq{Next: 99})
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range next accepted")
	}
	// Branch target out of range.
	bad2 := sampleProgram(t)
	bad2.Instrs[0].SetSeq(Seq{Next: 1, Cond: CondFlagSet, Branch: 50})
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range branch accepted")
	}
	// Undefined opcode.
	bad3 := sampleProgram(t)
	fl, _ := bad3.F.FieldByName("fu0.op")
	bad3.Instrs[0].W.Set(fl, uint64(arch.NumOps))
	if err := bad3.Validate(); err == nil {
		t.Error("undefined opcode accepted")
	}
}

func TestValidateRejectsOutOfRangeCounter(t *testing.T) {
	// seq.ctr is wider than strictly necessary so that out-of-range
	// counter indices are representable; they must be rejected, not
	// silently wrapped modulo NumCounters.
	for _, bad := range []Seq{
		{Next: 1, Cond: CondLoop, Branch: 0, Ctr: NumCounters},
		{Next: 1, CtrLoad: true, Ctr: NumCounters + 1, CtrValue: 5},
	} {
		p := sampleProgram(t)
		p.Instrs[0].SetSeq(bad)
		err := p.Validate()
		if err == nil {
			t.Errorf("counter index %d accepted: %+v", bad.Ctr, bad)
			continue
		}
		if !strings.Contains(err.Error(), "counter") {
			t.Errorf("error should name the counter field: %v", err)
		}
	}
	// In-range indices stay valid.
	for ctr := 0; ctr < NumCounters; ctr++ {
		p := sampleProgram(t)
		p.Instrs[0].SetSeq(Seq{Next: 1, CtrLoad: true, Ctr: ctr, CtrValue: 3})
		if err := p.Validate(); err != nil {
			t.Errorf("counter index %d rejected: %v", ctr, err)
		}
	}
}

func TestProgramSerializationRoundTrip(t *testing.T) {
	p := sampleProgram(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProgram(&buf, p.F)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("round trip length %d, want %d", q.Len(), p.Len())
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i].W, q.Instrs[i].W
		for lane := range a {
			if a[lane] != b[lane] {
				t.Fatalf("instr %d lane %d differs", i, lane)
			}
		}
	}
}

func TestReadProgramRejectsGarbage(t *testing.T) {
	f := MustFormat(arch.Default())
	if _, err := ReadProgram(strings.NewReader("JUNKJUNKJUNK"), f); err == nil {
		t.Error("garbage magic accepted")
	}
	if _, err := ReadProgram(strings.NewReader(""), f); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated body.
	p := sampleProgram(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := ReadProgram(bytes.NewReader(trunc), f); err == nil {
		t.Error("truncated program accepted")
	}
}

func TestReadProgramFormatMismatch(t *testing.T) {
	p := sampleProgram(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	other := MustFormat(arch.Subset())
	if _, err := ReadProgram(&buf, other); err == nil {
		t.Error("format mismatch accepted")
	}
}

func TestProgramDisassemble(t *testing.T) {
	p := sampleProgram(t)
	txt := p.Disassemble()
	if !strings.Contains(txt, "instr 0") || !strings.Contains(txt, "instr 2") {
		t.Errorf("disassembly missing instruction headers:\n%s", txt)
	}
}
