// Package microcode implements the NSC's "complex hierarchical
// microcode" (§3): each instruction completely specifies the pipeline
// configuration and function-unit operations for the entire node,
// requiring a few thousand bits encoded in dozens of separate field
// groups. The format is derived programmatically from the machine
// description so field widths adapt to the configuration.
//
// The package provides the bit-exact instruction word (Word), the field
// table (Format), a binary program container, and a disassembler. It is
// the "assembly language the NSC lacks" made concrete: the baseline
// against which the visual environment is measured.
package microcode

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
)

// ConstPoolSize is the number of 64-bit constants each instruction
// carries for register-file preloads (constants, reduction initial
// values, comparison thresholds).
const ConstPoolSize = 8

// NumCounters is the number of loop counters the sequencer implements.
// The seq.ctr field is wider than strictly necessary so that an
// out-of-range index is representable — and rejected by
// Program.Validate and the simulator's decoder — rather than silently
// wrapped modulo NumCounters.
const NumCounters = 4

// Field is one named bit range within the instruction word.
type Field struct {
	Name   string
	Offset int
	Width  int
}

// InKind encodes where a functional-unit input comes from.
type InKind uint64

// Input kinds for functional-unit operand fields.
const (
	// InNone marks an unconnected input.
	InNone InKind = iota
	// InSwitch takes the operand from the switch network (the sink
	// port's source selection applies).
	InSwitch
	// InConst takes the operand from the constant pool via the
	// register file.
	InConst
	// InFeedback takes the operand from the unit's own output of the
	// previous element (reduction feedback loop through the register
	// file).
	InFeedback
)

// Comparison operators for the sequencer's condition evaluation.
const (
	CmpLT uint64 = iota
	CmpLE
	CmpGT
	CmpGE
)

// Sequencer condition kinds.
const (
	// CondAlways falls through to seq.next.
	CondAlways uint64 = iota
	// CondFlagSet branches to seq.branch when the selected flag is set.
	CondFlagSet
	// CondFlagClear branches to seq.branch when the selected flag is
	// clear.
	CondFlagClear
	// CondHalt stops the program after this instruction.
	CondHalt
	// CondLoop decrements the selected loop counter and branches while
	// it remains positive — the sequencer's fixed-iteration construct
	// (explicit time stepping and other counted loops run without host
	// involvement).
	CondLoop
)

// Format is the derived field table for a given machine configuration.
// Construct with NewFormat; a Format is immutable and safe to share.
type Format struct {
	Cfg    arch.Config
	Fields []Field
	// Bits is the total instruction width in bits; WordsPerInstr the
	// number of uint64 lanes a Word occupies.
	Bits          int
	WordsPerInstr int

	index map[string]int

	// Pre-resolved field handles, indexed by component number, so hot
	// paths avoid map lookups.
	swSink  []Field // per sink: source selection (value NumSources = none)
	fuOp    []Field
	fuAKind []Field
	fuBKind []Field
	fuAIdx  []Field // constant-pool index when kind==InConst
	fuBIdx  []Field
	fuADel  []Field // register-file circular-queue delay, elements
	fuBDel  []Field
	fuRed   []Field // reduction mode enable
	fuRIni  []Field // reduction initial value (constant-pool index)
	consts  []Field
	memEn   []Field
	memDir  []Field // 0 = read (source), 1 = write (sink)
	memAddr []Field
	memStrd []Field // signed, two's complement
	memCnt  []Field
	memSkip []Field // leading elements suppressed (read: emit zeros; write: discard)
	memStrt []Field // write channels: cycle at which valid data reaches the sink
	cchEn   []Field
	cchDir  []Field
	cchBuf  []Field // which half of the double buffer
	cchAddr []Field
	cchStrd []Field
	cchCnt  []Field
	cchSkip []Field
	cchStrt []Field
	cchSwap []Field // swap buffers at instruction completion
	sduEn   []Field
	sduTap  [][]Field // per unit, per tap: delay in elements

	seqNext, seqBranch, seqCond, seqFlag, seqIrq, seqTrap Field
	seqCtr, seqCtrLd, seqCtrVal                           Field
	cmpEn, cmpFU, cmpConst, cmpOp, cmpFlag                Field
	noneSource                                            uint64
}

func bitsFor(n int) int {
	// Width needed to represent values 0..n-1.
	if n <= 1 {
		return 1
	}
	w := 0
	for v := n - 1; v > 0; v >>= 1 {
		w++
	}
	return w
}

// NewFormat derives the instruction format for cfg.
func NewFormat(cfg arch.Config) (*Format, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Format{Cfg: cfg, index: make(map[string]int)}
	add := func(name string, width int) Field {
		fl := Field{Name: name, Offset: f.Bits, Width: width}
		f.index[name] = len(f.Fields)
		f.Fields = append(f.Fields, fl)
		f.Bits += width
		return fl
	}

	nSrc := cfg.NumSources()
	srcW := bitsFor(nSrc + 1) // +1 for the "none" code
	f.noneSource = uint64(nSrc)
	for j := 0; j < cfg.NumSinks(); j++ {
		f.swSink = append(f.swSink, add(fmt.Sprintf("sw.snk%d", j), srcW))
	}

	opW := bitsFor(arch.NumOps)
	cW := bitsFor(ConstPoolSize)
	dW := bitsFor(cfg.MaxDelay + 1)
	for i := 0; i < cfg.TotalFUs; i++ {
		p := fmt.Sprintf("fu%d.", i)
		f.fuOp = append(f.fuOp, add(p+"op", opW))
		f.fuAKind = append(f.fuAKind, add(p+"akind", 2))
		f.fuBKind = append(f.fuBKind, add(p+"bkind", 2))
		f.fuAIdx = append(f.fuAIdx, add(p+"aconst", cW))
		f.fuBIdx = append(f.fuBIdx, add(p+"bconst", cW))
		f.fuADel = append(f.fuADel, add(p+"adelay", dW))
		f.fuBDel = append(f.fuBDel, add(p+"bdelay", dW))
		f.fuRed = append(f.fuRed, add(p+"reduce", 1))
		f.fuRIni = append(f.fuRIni, add(p+"redinit", cW))
	}

	for k := 0; k < ConstPoolSize; k++ {
		f.consts = append(f.consts, add(fmt.Sprintf("const%d", k), 64))
	}

	addrW := bitsFor(int(cfg.PlaneWords()))
	for p := 0; p < cfg.MemPlanes; p++ {
		pre := fmt.Sprintf("mem%d.", p)
		f.memEn = append(f.memEn, add(pre+"en", 1))
		f.memDir = append(f.memDir, add(pre+"dir", 1))
		f.memAddr = append(f.memAddr, add(pre+"addr", addrW))
		f.memStrd = append(f.memStrd, add(pre+"stride", 16))
		f.memCnt = append(f.memCnt, add(pre+"count", 24))
		f.memSkip = append(f.memSkip, add(pre+"skip", 24))
		f.memStrt = append(f.memStrt, add(pre+"start", 16))
	}

	cAddrW := bitsFor(int(cfg.CacheWords()))
	for p := 0; p < cfg.CachePlanes; p++ {
		pre := fmt.Sprintf("cache%d.", p)
		f.cchEn = append(f.cchEn, add(pre+"en", 1))
		f.cchDir = append(f.cchDir, add(pre+"dir", 1))
		f.cchBuf = append(f.cchBuf, add(pre+"buf", 1))
		f.cchAddr = append(f.cchAddr, add(pre+"addr", cAddrW))
		f.cchStrd = append(f.cchStrd, add(pre+"stride", 8))
		f.cchCnt = append(f.cchCnt, add(pre+"count", 12))
		f.cchSkip = append(f.cchSkip, add(pre+"skip", 12))
		f.cchStrt = append(f.cchStrt, add(pre+"start", 16))
		f.cchSwap = append(f.cchSwap, add(pre+"swap", 1))
	}

	tapW := bitsFor(cfg.SDUBufferLen + 1)
	for u := 0; u < cfg.ShiftDelayUnits; u++ {
		pre := fmt.Sprintf("sdu%d.", u)
		f.sduEn = append(f.sduEn, add(pre+"en", 1))
		taps := make([]Field, cfg.SDUTaps)
		for t := 0; t < cfg.SDUTaps; t++ {
			taps[t] = add(fmt.Sprintf("%stap%d", pre, t), tapW)
		}
		f.sduTap = append(f.sduTap, taps)
	}

	f.seqNext = add("seq.next", 12)
	f.seqBranch = add("seq.branch", 12)
	f.seqCond = add("seq.cond", 3)
	f.seqFlag = add("seq.flag", 4)
	f.seqIrq = add("seq.irq", 1)
	f.seqTrap = add("seq.trap", 1)
	f.seqCtr = add("seq.ctr", 3)
	f.seqCtrLd = add("seq.ctr.load", 1)
	f.seqCtrVal = add("seq.ctr.value", 24)
	f.cmpEn = add("seq.cmp.en", 1)
	f.cmpFU = add("seq.cmp.fu", bitsFor(cfg.TotalFUs))
	f.cmpConst = add("seq.cmp.const", cW)
	f.cmpOp = add("seq.cmp.op", 2)
	f.cmpFlag = add("seq.cmp.flag", 4)

	f.WordsPerInstr = (f.Bits + 63) / 64
	return f, nil
}

// MustFormat is NewFormat for known-good configurations.
func MustFormat(cfg arch.Config) *Format {
	f, err := NewFormat(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// FieldByName looks a field up by its hierarchical name.
func (f *Format) FieldByName(name string) (Field, bool) {
	i, ok := f.index[name]
	if !ok {
		return Field{}, false
	}
	return f.Fields[i], true
}

// NumFields returns the number of distinct fields in one instruction
// (the paper: "encoded in dozens of separate fields").
func (f *Format) NumFields() int { return len(f.Fields) }

// NoneSource is the reserved switch-selection value meaning "sink not
// driven".
func (f *Format) NoneSource() uint64 { return f.noneSource }

// FieldGroups summarizes the format hierarchically: group prefix →
// total bits. Groups follow the hardware hierarchy (switch, per-FU,
// constants, per-plane DMA, SDUs, sequencer).
func (f *Format) FieldGroups() map[string]int {
	g := make(map[string]int)
	for _, fl := range f.Fields {
		key := fl.Name
		for i := 0; i < len(key); i++ {
			if key[i] == '.' {
				key = key[:i]
				break
			}
		}
		// Collapse numbered components into their class.
		for i := 0; i < len(key); i++ {
			if key[i] >= '0' && key[i] <= '9' {
				key = key[:i]
				break
			}
		}
		g[key] += fl.Width
	}
	return g
}

// GroupNames returns the group keys of FieldGroups in sorted order.
func (f *Format) GroupNames() []string {
	g := f.FieldGroups()
	names := make([]string, 0, len(g))
	for k := range g {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Word is one microcode instruction: a dense little-endian bit vector
// of Format.Bits bits across WordsPerInstr uint64 lanes.
type Word []uint64

// NewWord allocates a zeroed instruction word for the format.
func (f *Format) NewWord() Word { return make(Word, f.WordsPerInstr) }

// Clone returns an independent copy of w.
func (w Word) Clone() Word {
	c := make(Word, len(w))
	copy(c, w)
	return c
}

// SetBits stores the low `width` bits of v at bit offset off.
func (w Word) SetBits(off, width int, v uint64) {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("microcode: field width %d out of range", width))
	}
	if width < 64 && v >= 1<<uint(width) {
		panic(fmt.Sprintf("microcode: value %d overflows %d-bit field", v, width))
	}
	lane, bit := off/64, uint(off%64)
	w[lane] &^= maskAt(bit, width)
	w[lane] |= v << bit
	if spill := int(bit) + width - 64; spill > 0 {
		w[lane+1] &^= (1<<uint(spill) - 1)
		w[lane+1] |= v >> (64 - bit)
	}
}

// GetBits extracts the `width`-bit value at bit offset off.
func (w Word) GetBits(off, width int) uint64 {
	lane, bit := off/64, uint(off%64)
	v := w[lane] >> bit
	if spill := int(bit) + width - 64; spill > 0 {
		v |= w[lane+1] << (64 - bit)
	}
	if width < 64 {
		v &= 1<<uint(width) - 1
	}
	return v
}

func maskAt(bit uint, width int) uint64 {
	if width >= 64 {
		return ^uint64(0) << bit
	}
	return (1<<uint(width) - 1) << bit
}

// Set stores v into field fl.
func (w Word) Set(fl Field, v uint64) { w.SetBits(fl.Offset, fl.Width, v) }

// Get extracts field fl.
func (w Word) Get(fl Field) uint64 { return w.GetBits(fl.Offset, fl.Width) }

// SetSigned stores a signed value in two's complement within the field.
func (w Word) SetSigned(fl Field, v int64) {
	min, max := -(int64(1) << uint(fl.Width-1)), int64(1)<<uint(fl.Width-1)-1
	if v < min || v > max {
		panic(fmt.Sprintf("microcode: signed value %d overflows %d-bit field %s", v, fl.Width, fl.Name))
	}
	w.SetBits(fl.Offset, fl.Width, uint64(v)&(1<<uint(fl.Width)-1))
}

// GetSigned extracts a two's-complement signed value from the field.
func (w Word) GetSigned(fl Field) int64 {
	v := w.GetBits(fl.Offset, fl.Width)
	sign := uint64(1) << uint(fl.Width-1)
	if v&sign != 0 {
		v |= ^uint64(0) << uint(fl.Width)
	}
	return int64(v)
}

// SetFloat stores a float64 bit pattern (64-bit fields only).
func (w Word) SetFloat(fl Field, v float64) {
	if fl.Width != 64 {
		panic("microcode: SetFloat on non-64-bit field " + fl.Name)
	}
	w.Set(fl, math.Float64bits(v))
}

// GetFloat extracts a float64 bit pattern (64-bit fields only).
func (w Word) GetFloat(fl Field) float64 {
	if fl.Width != 64 {
		panic("microcode: GetFloat on non-64-bit field " + fl.Name)
	}
	return math.Float64frombits(w.Get(fl))
}
