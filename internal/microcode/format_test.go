package microcode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func defFormat(t testing.TB) *Format {
	t.Helper()
	f, err := NewFormat(arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFormatWidthClaim(t *testing.T) {
	f := defFormat(t)
	// §3: "a few thousand bits of information per instruction".
	if f.Bits < 2000 || f.Bits > 8000 {
		t.Errorf("instruction width = %d bits; paper claims a few thousand", f.Bits)
	}
	// "encoded in dozens of separate fields": our flat field count is
	// in the hundreds; the hierarchical group count is the "dozens".
	if f.NumFields() < 100 {
		t.Errorf("only %d fields; expected hundreds at flat granularity", f.NumFields())
	}
	if groups := len(f.FieldGroups()); groups < 5 || groups > 50 {
		t.Errorf("%d field groups; expected a handful-to-dozens", groups)
	}
}

func TestFieldsContiguousAndDisjoint(t *testing.T) {
	f := defFormat(t)
	off := 0
	for _, fl := range f.Fields {
		if fl.Offset != off {
			t.Fatalf("field %s at offset %d, expected %d (gap or overlap)", fl.Name, fl.Offset, off)
		}
		if fl.Width <= 0 || fl.Width > 64 {
			t.Fatalf("field %s has width %d", fl.Name, fl.Width)
		}
		off += fl.Width
	}
	if off != f.Bits {
		t.Fatalf("fields cover %d bits, format says %d", off, f.Bits)
	}
	if f.WordsPerInstr != (f.Bits+63)/64 {
		t.Fatalf("WordsPerInstr = %d for %d bits", f.WordsPerInstr, f.Bits)
	}
}

func TestFieldByName(t *testing.T) {
	f := defFormat(t)
	if _, ok := f.FieldByName("fu0.op"); !ok {
		t.Error("fu0.op not found")
	}
	if _, ok := f.FieldByName("seq.next"); !ok {
		t.Error("seq.next not found")
	}
	if _, ok := f.FieldByName("no.such.field"); ok {
		t.Error("lookup of bogus field succeeded")
	}
}

func TestFormatRejectsBadConfig(t *testing.T) {
	c := arch.Default()
	c.TotalFUs = 7
	if _, err := NewFormat(c); err == nil {
		t.Error("NewFormat accepted invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustFormat should panic")
		}
	}()
	MustFormat(c)
}

// Property: writing arbitrary values into arbitrary fields and reading
// them back is the identity, and does not disturb neighbouring fields.
func TestBitFieldRoundTripProperty(t *testing.T) {
	f := defFormat(t)
	rng := rand.New(rand.NewSource(42))
	w := f.NewWord()
	// Shadow model: expected value per field.
	want := make([]uint64, len(f.Fields))
	for iter := 0; iter < 5000; iter++ {
		i := rng.Intn(len(f.Fields))
		fl := f.Fields[i]
		var v uint64
		if fl.Width == 64 {
			v = rng.Uint64()
		} else {
			v = rng.Uint64() & (1<<uint(fl.Width) - 1)
		}
		w.Set(fl, v)
		want[i] = v
		// Spot-check a few random fields against the shadow model.
		for k := 0; k < 4; k++ {
			j := rng.Intn(len(f.Fields))
			if got := w.Get(f.Fields[j]); got != want[j] {
				t.Fatalf("iter %d: field %s = %d, want %d (clobbered by write to %s)",
					iter, f.Fields[j].Name, got, want[j], fl.Name)
			}
		}
	}
	// Full final sweep.
	for j, fl := range f.Fields {
		if got := w.Get(fl); got != want[j] {
			t.Fatalf("final: field %s = %d, want %d", fl.Name, got, want[j])
		}
	}
}

func TestSetBitsOverflowPanics(t *testing.T) {
	f := defFormat(t)
	w := f.NewWord()
	fl, _ := f.FieldByName("fu0.op")
	defer func() {
		if recover() == nil {
			t.Error("overflowing value should panic")
		}
	}()
	w.Set(fl, 1<<uint(fl.Width))
}

func TestSignedFields(t *testing.T) {
	f := defFormat(t)
	w := f.NewWord()
	fl, _ := f.FieldByName("mem0.stride")
	for _, v := range []int64{0, 1, -1, 100, -100, 32767, -32768} {
		w.SetSigned(fl, v)
		if got := w.GetSigned(fl); got != v {
			t.Errorf("signed round-trip %d -> %d", v, got)
		}
	}
	for _, v := range []int64{32768, -32769} {
		func() {
			defer func() { recover() }()
			w.SetSigned(fl, v)
			t.Errorf("signed overflow %d did not panic", v)
		}()
	}
}

func TestFloatFields(t *testing.T) {
	f := defFormat(t)
	in := f.NewInstr()
	vals := []float64{0, 1, -1, math.Pi, 1e-300, math.Inf(1), math.Inf(-1)}
	for k, v := range vals {
		in.SetConst(k, v)
	}
	for k, v := range vals {
		if got := in.Const(k); got != v {
			t.Errorf("const %d = %g, want %g", k, got, v)
		}
	}
	in.SetConst(7, math.NaN())
	if !math.IsNaN(in.Const(7)) {
		t.Error("NaN did not survive round trip")
	}
	// SetFloat on a narrow field must panic.
	fl, _ := f.FieldByName("seq.next")
	defer func() {
		if recover() == nil {
			t.Error("SetFloat on narrow field should panic")
		}
	}()
	in.W.SetFloat(fl, 1.0)
}

func TestInstrRouting(t *testing.T) {
	cfg := arch.Default()
	f := MustFormat(cfg)
	in := f.NewInstr()
	// Fresh instruction: every sink undriven.
	for j := 0; j < cfg.NumSinks(); j++ {
		if in.SinkSource(arch.SinkID(j)) != arch.InvalidSource {
			t.Fatalf("sink %d driven in fresh instruction", j)
		}
	}
	snk := cfg.SnkFUIn(5, 0)
	src := cfg.SrcMemRead(3)
	in.Route(snk, src)
	if got := in.SinkSource(snk); got != src {
		t.Errorf("SinkSource = %v, want %v", got, src)
	}
	in.Unroute(snk)
	if in.SinkSource(snk) != arch.InvalidSource {
		t.Error("Unroute did not clear the sink")
	}
}

func TestInstrFUConfig(t *testing.T) {
	f := defFormat(t)
	in := f.NewInstr()
	in.SetFUOp(4, arch.OpMul)
	in.SetFUInput(4, 0, InSwitch, 0, 3)
	in.SetFUInput(4, 1, InConst, 5, 0)
	in.SetFUReduce(4, true, 2)
	if got := in.FUOp(4); got != arch.OpMul {
		t.Errorf("op = %v", got)
	}
	k, c, d := in.FUInput(4, 0)
	if k != InSwitch || c != 0 || d != 3 {
		t.Errorf("input A = %v,%d,%d", k, c, d)
	}
	k, c, d = in.FUInput(4, 1)
	if k != InConst || c != 5 || d != 0 {
		t.Errorf("input B = %v,%d,%d", k, c, d)
	}
	if en, init := in.FUReduce(4); !en || init != 2 {
		t.Errorf("reduce = %v,%d", en, init)
	}
	// Unconfigured neighbour unit untouched.
	if in.FUOp(5) != arch.OpNop {
		t.Error("fu5 disturbed")
	}
}

func TestInstrDMAAndSDU(t *testing.T) {
	f := defFormat(t)
	in := f.NewInstr()
	md := MemDMA{Enable: true, Write: false, Addr: 10000, Stride: -4, Count: 123456}
	in.SetMemDMA(3, md)
	if got := in.MemDMAOf(3); got != md {
		t.Errorf("mem DMA = %+v, want %+v", got, md)
	}
	if in.MemDMAOf(4).Enable {
		t.Error("mem4 disturbed")
	}
	cd := CacheDMA{Enable: true, Write: true, Buf: 1, Addr: 512, Stride: 2, Count: 100, Swap: true}
	in.SetCacheDMA(15, cd)
	if got := in.CacheDMAOf(15); got != cd {
		t.Errorf("cache DMA = %+v, want %+v", got, cd)
	}
	in.SetSDU(1, true, []int{1, 2, 64, 4096})
	en, taps := in.SDUOf(1)
	if !en {
		t.Error("sdu1 not enabled")
	}
	want := []int{1, 2, 64, 4096, 0, 0, 0, 0}
	for i := range want {
		if taps[i] != want[i] {
			t.Errorf("tap %d = %d, want %d", i, taps[i], want[i])
		}
	}
}

func TestInstrSeq(t *testing.T) {
	f := defFormat(t)
	in := f.NewInstr()
	s := Seq{Next: 7, Branch: 2, Cond: CondFlagSet, Flag: 3, IRQ: true,
		CmpEnable: true, CmpFU: 11, CmpConst: 6, CmpOp: CmpGE, CmpFlag: 3}
	in.SetSeq(s)
	if got := in.SeqOf(); got != s {
		t.Errorf("seq = %+v, want %+v", got, s)
	}
}

func TestInstrClone(t *testing.T) {
	f := defFormat(t)
	a := f.NewInstr()
	a.SetFUOp(0, arch.OpAdd)
	b := a.Clone()
	b.SetFUOp(0, arch.OpSub)
	if a.FUOp(0) != arch.OpAdd {
		t.Error("clone shares storage with original")
	}
}

func TestDisassembleMentionsConfiguredParts(t *testing.T) {
	cfg := arch.Default()
	f := MustFormat(cfg)
	in := f.NewInstr()
	in.Route(cfg.SnkFUIn(0, 0), cfg.SrcMemRead(2))
	in.SetFUOp(0, arch.OpAdd)
	in.SetFUInput(0, 0, InSwitch, 0, 0)
	in.SetFUInput(0, 1, InConst, 1, 0)
	in.SetConst(1, 0.25)
	in.SetMemDMA(2, MemDMA{Enable: true, Addr: 0, Stride: 1, Count: 10})
	in.SetSeq(Seq{Cond: CondHalt})
	txt := in.Disassemble()
	for _, want := range []string{"M2.rd", "FU0.a", "add", "const1 = 0.25", "mem2", "seq"} {
		if !contains(txt, want) {
			t.Errorf("disassembly missing %q:\n%s", want, txt)
		}
	}
	// An untouched instruction disassembles to just the sequencer line.
	empty := f.NewInstr().Disassemble()
	if contains(empty, "fu") || contains(empty, "mem") {
		t.Errorf("empty instruction disassembly not minimal:\n%s", empty)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: format derivation is deterministic for arbitrary valid
// configs and total width equals the sum of field widths.
func TestFormatDeterministicProperty(t *testing.T) {
	fn := func(t3, d2, s1, planes uint8) bool {
		c := arch.Default()
		c.Triplets = int(t3%4) + 1
		c.Doublets = int(d2 % 8)
		c.Singlets = int(s1 % 4)
		c.TotalFUs = c.Triplets*3 + c.Doublets*2 + c.Singlets
		c.MemPlanes = int(planes%16) + 1
		f1, err1 := NewFormat(c)
		f2, err2 := NewFormat(c)
		if err1 != nil || err2 != nil {
			return false
		}
		if f1.Bits != f2.Bits || len(f1.Fields) != len(f2.Fields) {
			return false
		}
		sum := 0
		for _, fl := range f1.Fields {
			sum += fl.Width
		}
		return sum == f1.Bits
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
