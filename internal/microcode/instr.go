package microcode

import (
	"fmt"
	"strings"

	"repro/internal/arch"
)

// Instr is a typed view over one instruction word. It pairs the raw
// bits with the format so machine components can be programmed and
// interrogated without knowing field offsets.
type Instr struct {
	F *Format
	W Word
}

// NewInstr returns a zeroed instruction for the format with every
// switch sink initialized to "not driven".
func (f *Format) NewInstr() *Instr {
	in := &Instr{F: f, W: f.NewWord()}
	for j := range f.swSink {
		in.W.Set(f.swSink[j], f.noneSource)
	}
	return in
}

// Clone returns an independent copy of the instruction.
func (in *Instr) Clone() *Instr { return &Instr{F: in.F, W: in.W.Clone()} }

// --- Switch network ---

// Route connects source src to sink snk through the switch network.
func (in *Instr) Route(snk arch.SinkID, src arch.SourceID) {
	in.W.Set(in.F.swSink[snk], uint64(src))
}

// Unroute disconnects sink snk.
func (in *Instr) Unroute(snk arch.SinkID) {
	in.W.Set(in.F.swSink[snk], in.F.noneSource)
}

// SinkSource returns the source driving sink snk, or InvalidSource if
// the sink is not driven.
func (in *Instr) SinkSource(snk arch.SinkID) arch.SourceID {
	v := in.W.Get(in.F.swSink[snk])
	if v == in.F.noneSource {
		return arch.InvalidSource
	}
	return arch.SourceID(v)
}

// --- Functional units ---

// SetFUOp programs unit fu to perform op.
func (in *Instr) SetFUOp(fu arch.FUID, op arch.Op) { in.W.Set(in.F.fuOp[fu], uint64(op)) }

// FUOp returns the op programmed on unit fu.
func (in *Instr) FUOp(fu arch.FUID) arch.Op { return arch.Op(in.W.Get(in.F.fuOp[fu])) }

// SetFUInput programs one operand side of unit fu (side 0 = A,
// side 1 = B): where the value comes from, the constant index when kind
// is InConst, and a register-file delay in elements.
func (in *Instr) SetFUInput(fu arch.FUID, side int, kind InKind, constIdx, delay int) {
	if side == 0 {
		in.W.Set(in.F.fuAKind[fu], uint64(kind))
		in.W.Set(in.F.fuAIdx[fu], uint64(constIdx))
		in.W.Set(in.F.fuADel[fu], uint64(delay))
	} else {
		in.W.Set(in.F.fuBKind[fu], uint64(kind))
		in.W.Set(in.F.fuBIdx[fu], uint64(constIdx))
		in.W.Set(in.F.fuBDel[fu], uint64(delay))
	}
}

// FUInput reads back one operand side of unit fu.
func (in *Instr) FUInput(fu arch.FUID, side int) (kind InKind, constIdx, delay int) {
	if side == 0 {
		return InKind(in.W.Get(in.F.fuAKind[fu])), int(in.W.Get(in.F.fuAIdx[fu])), int(in.W.Get(in.F.fuADel[fu]))
	}
	return InKind(in.W.Get(in.F.fuBKind[fu])), int(in.W.Get(in.F.fuBIdx[fu])), int(in.W.Get(in.F.fuBDel[fu]))
}

// SetFUReduce enables reduction mode on unit fu with the initial value
// taken from constant-pool slot initConst.
func (in *Instr) SetFUReduce(fu arch.FUID, enable bool, initConst int) {
	v := uint64(0)
	if enable {
		v = 1
	}
	in.W.Set(in.F.fuRed[fu], v)
	in.W.Set(in.F.fuRIni[fu], uint64(initConst))
}

// FUReduce reads back the reduction configuration of unit fu.
func (in *Instr) FUReduce(fu arch.FUID) (enable bool, initConst int) {
	return in.W.Get(in.F.fuRed[fu]) == 1, int(in.W.Get(in.F.fuRIni[fu]))
}

// --- Constant pool ---

// SetConst stores a float64 in constant-pool slot k.
func (in *Instr) SetConst(k int, v float64) { in.W.SetFloat(in.F.consts[k], v) }

// Const reads constant-pool slot k.
func (in *Instr) Const(k int) float64 { return in.W.GetFloat(in.F.consts[k]) }

// --- DMA: memory planes ---

// MemDMA describes one memory plane's DMA program for an instruction.
type MemDMA struct {
	Enable bool
	// Write is false for a read channel (plane → pipeline) and true for
	// a write channel (pipeline → plane).
	Write  bool
	Addr   int64 // word address within the plane
	Stride int64 // words, signed
	Count  int64 // elements
	// Skip suppresses the channel for the first Skip elements of the
	// instruction's vector: a read channel emits zeros, a write channel
	// discards. This is how streams with different grid alignments are
	// started in phase.
	Skip int64
	// Start (write channels only) is the pipeline-fill latency in
	// cycles before valid data reaches this sink; the DMA controller
	// idles until then. Computed by the microcode generator from the
	// diagram's timing analysis.
	Start int
}

// SetMemDMA programs plane p's DMA controller.
func (in *Instr) SetMemDMA(p int, d MemDMA) {
	in.W.Set(in.F.memEn[p], b2u(d.Enable))
	in.W.Set(in.F.memDir[p], b2u(d.Write))
	in.W.Set(in.F.memAddr[p], uint64(d.Addr))
	in.W.SetSigned(in.F.memStrd[p], d.Stride)
	in.W.Set(in.F.memCnt[p], uint64(d.Count))
	in.W.Set(in.F.memSkip[p], uint64(d.Skip))
	in.W.Set(in.F.memStrt[p], uint64(d.Start))
}

// MemDMAOf reads back plane p's DMA program.
func (in *Instr) MemDMAOf(p int) MemDMA {
	return MemDMA{
		Enable: in.W.Get(in.F.memEn[p]) == 1,
		Write:  in.W.Get(in.F.memDir[p]) == 1,
		Addr:   int64(in.W.Get(in.F.memAddr[p])),
		Stride: in.W.GetSigned(in.F.memStrd[p]),
		Count:  int64(in.W.Get(in.F.memCnt[p])),
		Skip:   int64(in.W.Get(in.F.memSkip[p])),
		Start:  int(in.W.Get(in.F.memStrt[p])),
	}
}

// --- DMA: cache planes ---

// CacheDMA describes one cache plane's DMA program.
type CacheDMA struct {
	Enable bool
	Write  bool
	// Buf selects which half of the double buffer the pipeline sees.
	Buf    int
	Addr   int64
	Stride int64
	Count  int64
	Skip   int64
	Start  int
	// Swap exchanges the two buffers when the instruction completes.
	Swap bool
}

// SetCacheDMA programs cache plane p's DMA controller.
func (in *Instr) SetCacheDMA(p int, d CacheDMA) {
	in.W.Set(in.F.cchEn[p], b2u(d.Enable))
	in.W.Set(in.F.cchDir[p], b2u(d.Write))
	in.W.Set(in.F.cchBuf[p], uint64(d.Buf))
	in.W.Set(in.F.cchAddr[p], uint64(d.Addr))
	in.W.SetSigned(in.F.cchStrd[p], d.Stride)
	in.W.Set(in.F.cchCnt[p], uint64(d.Count))
	in.W.Set(in.F.cchSkip[p], uint64(d.Skip))
	in.W.Set(in.F.cchStrt[p], uint64(d.Start))
	in.W.Set(in.F.cchSwap[p], b2u(d.Swap))
}

// CacheDMAOf reads back cache plane p's DMA program.
func (in *Instr) CacheDMAOf(p int) CacheDMA {
	return CacheDMA{
		Enable: in.W.Get(in.F.cchEn[p]) == 1,
		Write:  in.W.Get(in.F.cchDir[p]) == 1,
		Buf:    int(in.W.Get(in.F.cchBuf[p])),
		Addr:   int64(in.W.Get(in.F.cchAddr[p])),
		Stride: in.W.GetSigned(in.F.cchStrd[p]),
		Count:  int64(in.W.Get(in.F.cchCnt[p])),
		Skip:   int64(in.W.Get(in.F.cchSkip[p])),
		Start:  int(in.W.Get(in.F.cchStrt[p])),
		Swap:   in.W.Get(in.F.cchSwap[p]) == 1,
	}
}

// --- Shift/delay units ---

// SetSDU enables shift/delay unit u with the given per-tap delays (in
// elements). Tap delays not supplied are zero.
func (in *Instr) SetSDU(u int, enable bool, taps []int) {
	in.W.Set(in.F.sduEn[u], b2u(enable))
	for t := range in.F.sduTap[u] {
		v := 0
		if t < len(taps) {
			v = taps[t]
		}
		in.W.Set(in.F.sduTap[u][t], uint64(v))
	}
}

// SDUOf reads back shift/delay unit u's configuration.
func (in *Instr) SDUOf(u int) (enable bool, taps []int) {
	enable = in.W.Get(in.F.sduEn[u]) == 1
	taps = make([]int, len(in.F.sduTap[u]))
	for t := range taps {
		taps[t] = int(in.W.Get(in.F.sduTap[u][t]))
	}
	return enable, taps
}

// --- Sequencer ---

// Seq is the sequencer control portion of an instruction: next-PC,
// conditional branching on flags, completion interrupt, and the
// condition evaluator that compares a reduction register against a
// constant to set a flag (the paper's "elaborate interrupt scheme ...
// evaluate conditional expressions").
type Seq struct {
	Next   int
	Branch int
	Cond   uint64 // CondAlways, CondFlagSet, CondFlagClear, CondHalt
	Flag   int    // flag selected by Cond
	IRQ    bool   // raise completion interrupt
	// Trap arms the exception trap: a functional unit producing a
	// non-finite value (overflow, 0/0, ∞−∞) aborts the instruction
	// with a trap interrupt instead of streaming garbage onward (the
	// §2 interrupt scheme's third role, "trap exceptions").
	Trap bool
	// Ctr selects one of the sequencer's loop counters; CondLoop
	// decrements it and branches while positive. CtrLoad, when set,
	// loads CtrValue into the counter when the instruction completes
	// (before any CondLoop decrement of the same instruction).
	Ctr      int
	CtrLoad  bool
	CtrValue int64

	CmpEnable bool
	CmpFU     arch.FUID // reduction register compared
	CmpConst  int       // constant-pool slot holding the threshold
	CmpOp     uint64    // CmpLT..CmpGE
	CmpFlag   int       // flag set with the comparison result
}

// SetSeq programs the sequencer fields.
func (in *Instr) SetSeq(s Seq) {
	in.W.Set(in.F.seqNext, uint64(s.Next))
	in.W.Set(in.F.seqBranch, uint64(s.Branch))
	in.W.Set(in.F.seqCond, s.Cond)
	in.W.Set(in.F.seqFlag, uint64(s.Flag))
	in.W.Set(in.F.seqIrq, b2u(s.IRQ))
	in.W.Set(in.F.seqTrap, b2u(s.Trap))
	in.W.Set(in.F.seqCtr, uint64(s.Ctr))
	in.W.Set(in.F.seqCtrLd, b2u(s.CtrLoad))
	in.W.Set(in.F.seqCtrVal, uint64(s.CtrValue))
	in.W.Set(in.F.cmpEn, b2u(s.CmpEnable))
	in.W.Set(in.F.cmpFU, uint64(s.CmpFU))
	in.W.Set(in.F.cmpConst, uint64(s.CmpConst))
	in.W.Set(in.F.cmpOp, s.CmpOp)
	in.W.Set(in.F.cmpFlag, uint64(s.CmpFlag))
}

// SeqOf reads back the sequencer fields.
func (in *Instr) SeqOf() Seq {
	return Seq{
		Next:      int(in.W.Get(in.F.seqNext)),
		Branch:    int(in.W.Get(in.F.seqBranch)),
		Cond:      in.W.Get(in.F.seqCond),
		Flag:      int(in.W.Get(in.F.seqFlag)),
		IRQ:       in.W.Get(in.F.seqIrq) == 1,
		Trap:      in.W.Get(in.F.seqTrap) == 1,
		Ctr:       int(in.W.Get(in.F.seqCtr)),
		CtrLoad:   in.W.Get(in.F.seqCtrLd) == 1,
		CtrValue:  int64(in.W.Get(in.F.seqCtrVal)),
		CmpEnable: in.W.Get(in.F.cmpEn) == 1,
		CmpFU:     arch.FUID(in.W.Get(in.F.cmpFU)),
		CmpConst:  int(in.W.Get(in.F.cmpConst)),
		CmpOp:     in.W.Get(in.F.cmpOp),
		CmpFlag:   int(in.W.Get(in.F.cmpFlag)),
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Disassemble renders the non-default portions of the instruction as
// the textual microassembler listing the NSC never had ("reams of
// textual microassembler code", §6).
func (in *Instr) Disassemble() string {
	var sb strings.Builder
	cfg := in.F.Cfg
	for j := 0; j < cfg.NumSinks(); j++ {
		if src := in.SinkSource(arch.SinkID(j)); src != arch.InvalidSource {
			fmt.Fprintf(&sb, "route %-10s <- %s\n", cfg.SinkName(arch.SinkID(j)), cfg.SourceName(src))
		}
	}
	for i := 0; i < cfg.TotalFUs; i++ {
		fu := arch.FUID(i)
		op := in.FUOp(fu)
		ak, ac, ad := in.FUInput(fu, 0)
		bk, bc, bd := in.FUInput(fu, 1)
		red, ri := in.FUReduce(fu)
		if op == arch.OpNop && ak == InNone && bk == InNone && !red {
			continue
		}
		fmt.Fprintf(&sb, "fu%-3d %-6s a=%s b=%s", i, op, inputStr("a", ak, ac, ad), inputStr("b", bk, bc, bd))
		if red {
			fmt.Fprintf(&sb, " reduce(init=const%d)", ri)
		}
		sb.WriteByte('\n')
	}
	for k := 0; k < ConstPoolSize; k++ {
		if v := in.Const(k); v != 0 {
			fmt.Fprintf(&sb, "const%d = %g\n", k, v)
		}
	}
	for p := 0; p < cfg.MemPlanes; p++ {
		if d := in.MemDMAOf(p); d.Enable {
			fmt.Fprintf(&sb, "mem%d   %s addr=%d stride=%d count=%d skip=%d start=%d\n", p, dirStr(d.Write), d.Addr, d.Stride, d.Count, d.Skip, d.Start)
		}
	}
	for p := 0; p < cfg.CachePlanes; p++ {
		if d := in.CacheDMAOf(p); d.Enable {
			fmt.Fprintf(&sb, "cache%d %s buf=%d addr=%d stride=%d count=%d skip=%d start=%d swap=%v\n", p, dirStr(d.Write), d.Buf, d.Addr, d.Stride, d.Count, d.Skip, d.Start, d.Swap)
		}
	}
	for u := 0; u < cfg.ShiftDelayUnits; u++ {
		if en, taps := in.SDUOf(u); en {
			fmt.Fprintf(&sb, "sdu%d   taps=%v\n", u, taps)
		}
	}
	s := in.SeqOf()
	fmt.Fprintf(&sb, "seq    next=%d branch=%d cond=%d flag=%d irq=%v", s.Next, s.Branch, s.Cond, s.Flag, s.IRQ)
	if s.Trap {
		sb.WriteString(" trap")
	}
	if s.CtrLoad {
		fmt.Fprintf(&sb, " ldctr(%d=%d)", s.Ctr, s.CtrValue)
	}
	if s.Cond == CondLoop {
		fmt.Fprintf(&sb, " loopctr=%d", s.Ctr)
	}
	if s.CmpEnable {
		fmt.Fprintf(&sb, " cmp(fu%d %s const%d -> flag%d)", s.CmpFU, cmpStr(s.CmpOp), s.CmpConst, s.CmpFlag)
	}
	sb.WriteByte('\n')
	return sb.String()
}

func inputStr(side string, k InKind, c, d int) string {
	var s string
	switch k {
	case InNone:
		s = "-"
	case InSwitch:
		s = "sw"
	case InConst:
		s = fmt.Sprintf("const%d", c)
	case InFeedback:
		s = "fb"
	}
	if d > 0 {
		s += fmt.Sprintf("+z%d", d)
	}
	_ = side
	return s
}

func dirStr(write bool) string {
	if write {
		return "write"
	}
	return "read "
}

func cmpStr(op uint64) string {
	switch op {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return "?"
}
