package microcode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/arch"
)

// Program is a sequence of microcode instructions plus the format they
// were assembled for. Instruction addresses are indices into Instrs;
// the sequencer's Next/Branch fields refer to these addresses.
type Program struct {
	F      *Format
	Instrs []*Instr
}

// NewProgram returns an empty program for the format.
func NewProgram(f *Format) *Program { return &Program{F: f} }

// Append adds an instruction and returns its address.
func (p *Program) Append(in *Instr) int {
	p.Instrs = append(p.Instrs, in)
	return len(p.Instrs) - 1
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// At returns the instruction at address pc.
func (p *Program) At(pc int) (*Instr, error) {
	if pc < 0 || pc >= len(p.Instrs) {
		return nil, fmt.Errorf("microcode: pc %d out of range [0,%d)", pc, len(p.Instrs))
	}
	return p.Instrs[pc], nil
}

// Validate checks that every sequencer target is in range, that all
// encoded opcodes are defined, and that every referenced loop counter
// exists. Counter indexing is strict: an out-of-range seq.ctr is a
// program error, not an address to be wrapped modulo NumCounters.
func (p *Program) Validate() error {
	for pc, in := range p.Instrs {
		s := in.SeqOf()
		if s.Cond != CondHalt {
			if s.Next < 0 || s.Next >= len(p.Instrs) {
				return fmt.Errorf("microcode: instr %d: next target %d out of range", pc, s.Next)
			}
			if s.Cond == CondFlagSet || s.Cond == CondFlagClear || s.Cond == CondLoop {
				if s.Branch < 0 || s.Branch >= len(p.Instrs) {
					return fmt.Errorf("microcode: instr %d: branch target %d out of range", pc, s.Branch)
				}
			}
		}
		if (s.Cond == CondLoop || s.CtrLoad) && (s.Ctr < 0 || s.Ctr >= NumCounters) {
			return fmt.Errorf("microcode: instr %d: loop counter %d out of range [0,%d)", pc, s.Ctr, NumCounters)
		}
		for i := 0; i < p.F.Cfg.TotalFUs; i++ {
			if op := in.FUOp(arch.FUID(i)); !op.Valid() {
				return fmt.Errorf("microcode: instr %d: fu%d has undefined opcode %d", pc, i, op)
			}
		}
	}
	return nil
}

// Disassemble renders the whole program.
func (p *Program) Disassemble() string {
	s := ""
	for pc, in := range p.Instrs {
		s += fmt.Sprintf("--- instr %d ---\n%s", pc, in.Disassemble())
	}
	return s
}

// Binary container. Layout (little endian):
//
//	magic "NSCM" | version u32 | bits u32 | lanes u32 | count u32 |
//	count × lanes × u64
//
// The format itself is not serialized; the reader must construct the
// matching Format from the same arch.Config, and bits/lanes are checked
// against it.
const (
	magic   = "NSCM"
	version = 1
)

// WriteTo serializes the program.
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return n, err
	}
	n += 4
	if err := write(uint32(version)); err != nil {
		return n, err
	}
	if err := write(uint32(p.F.Bits)); err != nil {
		return n, err
	}
	if err := write(uint32(p.F.WordsPerInstr)); err != nil {
		return n, err
	}
	if err := write(uint32(len(p.Instrs))); err != nil {
		return n, err
	}
	for _, in := range p.Instrs {
		if err := write([]uint64(in.W)); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadProgram deserializes a program assembled for format f.
func ReadProgram(r io.Reader, f *Format) (*Program, error) {
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("microcode: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("microcode: bad magic, not an NSC microcode file")
	}
	var ver, bits, lanes, count uint32
	for _, v := range []*uint32{&ver, &bits, &lanes, &count} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("microcode: reading header: %w", err)
		}
	}
	if ver != version {
		return nil, fmt.Errorf("microcode: version %d unsupported", ver)
	}
	if int(bits) != f.Bits || int(lanes) != f.WordsPerInstr {
		return nil, fmt.Errorf("microcode: file built for %d-bit/%d-lane format, reader has %d-bit/%d-lane", bits, lanes, f.Bits, f.WordsPerInstr)
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("microcode: implausible instruction count %d", count)
	}
	p := NewProgram(f)
	for i := uint32(0); i < count; i++ {
		w := f.NewWord()
		if err := binary.Read(r, binary.LittleEndian, []uint64(w)); err != nil {
			return nil, fmt.Errorf("microcode: reading instruction %d: %w", i, err)
		}
		p.Append(&Instr{F: f, W: w})
	}
	return p, nil
}
