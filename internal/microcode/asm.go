package microcode

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/arch"
)

// Assemble parses the textual microassembler dialect that Disassemble
// emits, turning "reams of textual microassembler code" (§6) back into
// instruction words. The NSC never had an assembly language; this one
// exists as the hand-coding baseline the visual environment is
// measured against.
//
// Accepted statements (one per line, '#' comments):
//
//	route <sink> <- <source>          e.g. route FU3.a <- M0.rd
//	fu<N> <op> a=<in> b=<in> [reduce(init=const<K>)]
//	const<K> = <float>
//	mem<P>  read|write addr=<A> stride=<S> count=<C> [skip=<K>] [start=<T>]
//	cache<P> read|write buf=<B> addr=<A> stride=<S> count=<C> [skip=<K>] [start=<T>] [swap]
//	sdu<U>  taps=[d0 d1 ...]
//	seq     next=<N> branch=<B> cond=<0..3> flag=<F> [irq] [cmp(fu<N> <op> const<K> -> flag<F>)]
//
// Operand syntax: "-" (none), "sw" (switch), "const<K>", "fb"
// (feedback); any may carry "+z<D>" for a register-file delay.
func (f *Format) Assemble(r io.Reader) (*Instr, error) {
	in := f.NewInstr()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := f.asmLine(in, line); err != nil {
			return nil, fmt.Errorf("microcode: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return in, nil
}

func (f *Format) asmLine(in *Instr, line string) error {
	fields := strings.Fields(line)
	head := fields[0]
	switch {
	case head == "route":
		// route <sink> <- <source>
		if len(fields) != 4 || fields[2] != "<-" {
			return fmt.Errorf("route syntax: route <sink> <- <source>")
		}
		snk, err := f.parseSink(fields[1])
		if err != nil {
			return err
		}
		src, err := f.parseSource(fields[3])
		if err != nil {
			return err
		}
		in.Route(snk, src)
		return nil

	case strings.HasPrefix(head, "fu"):
		n, err := strconv.Atoi(head[2:])
		if err != nil || n < 0 || n >= f.Cfg.TotalFUs {
			return fmt.Errorf("bad unit %q", head)
		}
		if len(fields) < 2 {
			return fmt.Errorf("fu statement needs an op")
		}
		op, ok := arch.OpByName(fields[1])
		if !ok {
			return fmt.Errorf("unknown op %q", fields[1])
		}
		in.SetFUOp(arch.FUID(n), op)
		for _, tok := range fields[2:] {
			switch {
			case strings.HasPrefix(tok, "a="):
				if err := f.asmInput(in, arch.FUID(n), 0, tok[2:]); err != nil {
					return err
				}
			case strings.HasPrefix(tok, "b="):
				if err := f.asmInput(in, arch.FUID(n), 1, tok[2:]); err != nil {
					return err
				}
			case strings.HasPrefix(tok, "reduce(init=const") && strings.HasSuffix(tok, ")"):
				k, err := strconv.Atoi(tok[len("reduce(init=const") : len(tok)-1])
				if err != nil || k < 0 || k >= ConstPoolSize {
					return fmt.Errorf("bad reduce init %q", tok)
				}
				in.SetFUReduce(arch.FUID(n), true, k)
			default:
				return fmt.Errorf("unknown fu token %q", tok)
			}
		}
		return nil

	case strings.HasPrefix(head, "const"):
		// const<K> = <float>
		k, err := strconv.Atoi(head[5:])
		if err != nil || k < 0 || k >= ConstPoolSize {
			return fmt.Errorf("bad constant slot %q", head)
		}
		if len(fields) != 3 || fields[1] != "=" {
			return fmt.Errorf("const syntax: const<K> = <value>")
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return err
		}
		in.SetConst(k, v)
		return nil

	case strings.HasPrefix(head, "mem"):
		p, err := strconv.Atoi(head[3:])
		if err != nil || p < 0 || p >= f.Cfg.MemPlanes {
			return fmt.Errorf("bad plane %q", head)
		}
		d := MemDMA{Enable: true}
		kv, err := asmKV(fields[1:], &d.Write)
		if err != nil {
			return err
		}
		d.Addr = kv.i64("addr")
		d.Stride = kv.i64("stride")
		d.Count = kv.i64("count")
		d.Skip = kv.i64("skip")
		d.Start = int(kv.i64("start"))
		in.SetMemDMA(p, d)
		return nil

	case strings.HasPrefix(head, "cache"):
		p, err := strconv.Atoi(head[5:])
		if err != nil || p < 0 || p >= f.Cfg.CachePlanes {
			return fmt.Errorf("bad cache %q", head)
		}
		d := CacheDMA{Enable: true}
		kv, err := asmKV(fields[1:], &d.Write)
		if err != nil {
			return err
		}
		d.Buf = int(kv.i64("buf"))
		d.Addr = kv.i64("addr")
		d.Stride = kv.i64("stride")
		d.Count = kv.i64("count")
		d.Skip = kv.i64("skip")
		d.Start = int(kv.i64("start"))
		d.Swap = kv.flags["swap"] || kv.vals["swap"] == "true"
		in.SetCacheDMA(p, d)
		return nil

	case strings.HasPrefix(head, "sdu"):
		u, err := strconv.Atoi(head[3:])
		if err != nil || u < 0 || u >= f.Cfg.ShiftDelayUnits {
			return fmt.Errorf("bad SDU %q", head)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, head))
		if !strings.HasPrefix(rest, "taps=[") || !strings.HasSuffix(rest, "]") {
			return fmt.Errorf("sdu syntax: sdu<U> taps=[d0 d1 ...]")
		}
		var taps []int
		for _, tok := range strings.Fields(rest[len("taps=[") : len(rest)-1]) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return fmt.Errorf("bad tap %q", tok)
			}
			taps = append(taps, v)
		}
		in.SetSDU(u, true, taps)
		return nil

	case head == "seq":
		s := in.SeqOf()
		rest := fields[1:]
		for i := 0; i < len(rest); i++ {
			tok := rest[i]
			switch {
			case strings.HasPrefix(tok, "next="):
				s.Next = asmInt(tok[5:])
			case strings.HasPrefix(tok, "branch="):
				s.Branch = asmInt(tok[7:])
			case strings.HasPrefix(tok, "cond="):
				s.Cond = uint64(asmInt(tok[5:]))
			case strings.HasPrefix(tok, "flag="):
				s.Flag = asmInt(tok[5:])
			case tok == "irq" || strings.HasPrefix(tok, "irq=true"):
				s.IRQ = true
			case tok == "trap":
				s.Trap = true
			case strings.HasPrefix(tok, "ldctr(") && strings.HasSuffix(tok, ")"):
				var c int
				var v int64
				if _, err := fmt.Sscanf(tok, "ldctr(%d=%d)", &c, &v); err != nil {
					return fmt.Errorf("bad ldctr clause %q", tok)
				}
				s.Ctr, s.CtrLoad, s.CtrValue = c, true, v
			case strings.HasPrefix(tok, "loopctr="):
				s.Ctr = asmInt(tok[8:])
			case strings.HasPrefix(tok, "irq="):
				// irq=false: leave unset.
			case strings.HasPrefix(tok, "cmp(fu"):
				// cmp(fu<N> <op> const<K> -> flag<F>) across 5 tokens.
				if i+4 >= len(rest) {
					return fmt.Errorf("truncated cmp clause")
				}
				n, err := strconv.Atoi(strings.TrimPrefix(tok, "cmp(fu"))
				if err != nil {
					return fmt.Errorf("bad cmp unit %q", tok)
				}
				s.CmpEnable = true
				s.CmpFU = arch.FUID(n)
				switch rest[i+1] {
				case "<":
					s.CmpOp = CmpLT
				case "<=":
					s.CmpOp = CmpLE
				case ">":
					s.CmpOp = CmpGT
				case ">=":
					s.CmpOp = CmpGE
				default:
					return fmt.Errorf("bad cmp operator %q", rest[i+1])
				}
				k, err := strconv.Atoi(strings.TrimPrefix(rest[i+2], "const"))
				if err != nil {
					return fmt.Errorf("bad cmp constant %q", rest[i+2])
				}
				s.CmpConst = k
				if rest[i+3] != "->" {
					return fmt.Errorf("cmp syntax: cmp(fuN < constK -> flagF)")
				}
				fl := strings.TrimSuffix(strings.TrimPrefix(rest[i+4], "flag"), ")")
				s.CmpFlag = asmInt(fl)
				i += 4
			default:
				return fmt.Errorf("unknown seq token %q", tok)
			}
		}
		in.SetSeq(s)
		return nil
	}
	return fmt.Errorf("unknown statement %q", head)
}

// asmInput parses an operand descriptor: "-", "sw", "const<K>", "fb",
// optionally suffixed "+z<D>".
func (f *Format) asmInput(in *Instr, fu arch.FUID, side int, tok string) error {
	delay := 0
	if i := strings.Index(tok, "+z"); i >= 0 {
		d, err := strconv.Atoi(tok[i+2:])
		if err != nil {
			return fmt.Errorf("bad delay in %q", tok)
		}
		delay = d
		tok = tok[:i]
	}
	switch {
	case tok == "-":
		in.SetFUInput(fu, side, InNone, 0, delay)
	case tok == "sw":
		in.SetFUInput(fu, side, InSwitch, 0, delay)
	case tok == "fb":
		in.SetFUInput(fu, side, InFeedback, 0, delay)
	case strings.HasPrefix(tok, "const"):
		k, err := strconv.Atoi(tok[5:])
		if err != nil || k < 0 || k >= ConstPoolSize {
			return fmt.Errorf("bad constant operand %q", tok)
		}
		in.SetFUInput(fu, side, InConst, k, delay)
	default:
		return fmt.Errorf("bad operand %q", tok)
	}
	return nil
}

// parseSource resolves names like "M3.rd", "C1.rd", "SDU0.t2",
// "FU7.out" to switch source ports.
func (f *Format) parseSource(name string) (arch.SourceID, error) {
	c := f.Cfg
	var n, t int
	switch {
	case scan1(name, "M%d.rd", &n) && n >= 0 && n < c.MemPlanes:
		return c.SrcMemRead(n), nil
	case scan1(name, "C%d.rd", &n) && n >= 0 && n < c.CachePlanes:
		return c.SrcCacheRead(n), nil
	case scan2(name, "SDU%d.t%d", &n, &t) && n >= 0 && n < c.ShiftDelayUnits && t >= 0 && t < c.SDUTaps:
		return c.SrcSDUTap(n, t), nil
	case scan1(name, "FU%d.out", &n) && n >= 0 && n < c.TotalFUs:
		return c.SrcFUOut(arch.FUID(n)), nil
	}
	return arch.InvalidSource, fmt.Errorf("unknown source port %q", name)
}

// parseSink resolves names like "M3.wr", "C1.wr", "SDU0.in", "FU7.a".
func (f *Format) parseSink(name string) (arch.SinkID, error) {
	c := f.Cfg
	var n int
	switch {
	case scan1(name, "M%d.wr", &n) && n >= 0 && n < c.MemPlanes:
		return c.SnkMemWrite(n), nil
	case scan1(name, "C%d.wr", &n) && n >= 0 && n < c.CachePlanes:
		return c.SnkCacheWrite(n), nil
	case scan1(name, "SDU%d.in", &n) && n >= 0 && n < c.ShiftDelayUnits:
		return c.SnkSDUIn(n), nil
	case scan1(name, "FU%d.a", &n) && n >= 0 && n < c.TotalFUs:
		return c.SnkFUIn(arch.FUID(n), 0), nil
	case scan1(name, "FU%d.b", &n) && n >= 0 && n < c.TotalFUs:
		return c.SnkFUIn(arch.FUID(n), 1), nil
	}
	return arch.InvalidSink, fmt.Errorf("unknown sink port %q", name)
}

// scan1/scan2 are strict Sscanf wrappers: the parse must reproduce the
// whole input, rejecting trailing garbage.
func scan1(s, format string, a *int) bool {
	if n, err := fmt.Sscanf(s, format, a); n == 1 && err == nil {
		return fmt.Sprintf(format, *a) == s
	}
	return false
}

func scan2(s, format string, a, b *int) bool {
	if n, err := fmt.Sscanf(s, format, a, b); n == 2 && err == nil {
		return fmt.Sprintf(format, *a, *b) == s
	}
	return false
}

// AssembleProgram parses a multi-instruction listing using the
// "--- instr N ---" separators Disassemble emits.
func (f *Format) AssembleProgram(r io.Reader) (*Program, error) {
	prog := NewProgram(f)
	var cur []string
	flush := func() error {
		if cur == nil {
			return nil
		}
		in, err := f.Assemble(strings.NewReader(strings.Join(cur, "\n")))
		if err != nil {
			return err
		}
		prog.Append(in)
		cur = nil
		return nil
	}
	sc := bufio.NewScanner(r)
	started := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "--- instr") {
			if started {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			started = true
			cur = []string{}
			continue
		}
		if started && line != "" {
			cur = append(cur, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if prog.Len() == 0 {
		return nil, fmt.Errorf("microcode: no instructions in listing")
	}
	return prog, nil
}

type asmKVMap struct {
	vals  map[string]string
	flags map[string]bool
}

func asmKV(fields []string, write *bool) (asmKVMap, error) {
	kv := asmKVMap{vals: map[string]string{}, flags: map[string]bool{}}
	for _, tok := range fields {
		switch tok {
		case "read":
			*write = false
		case "write":
			*write = true
		default:
			if i := strings.IndexByte(tok, '='); i > 0 {
				kv.vals[tok[:i]] = tok[i+1:]
			} else {
				kv.flags[tok] = true
			}
		}
	}
	return kv, nil
}

func (kv asmKVMap) i64(name string) int64 {
	v, err := strconv.ParseInt(kv.vals[name], 10, 64)
	if err != nil {
		return 0
	}
	return v
}

func asmInt(s string) int {
	v, _ := strconv.Atoi(s)
	return v
}
