#!/usr/bin/env python3
"""Validate a `nscsim -bench-json` report.

Usage: check-bench.py bench.json   (or "-" for stdin)

The emitter's JSON is the machine-readable face of the repo's
performance probes; CI runs this checker on a fresh report so a probe
silently dropped from the emitter, a record that lost its allocation
accounting, or a fast path that started allocating again fails the
build instead of rotting quietly. Wall-clock magnitudes are NOT
checked — they belong to the host — only shape and invariants.
"""
import json
import sys

# Every probe the emitter must report. New probes may be appended
# freely; removing one is a CI failure until this list agrees.
REQUIRED = [
    "engine-overlap/overlap",
    "engine-overlap/serial",
    "plan-cache/warm-exec",
    "kernel-exec/warm",
    "kernel-exec/interp",
    "trap-overhead/off",
    "trap-overhead/armed",
    "compile-cache/cold",
    "compile-cache/warm-hit",
    "obs-overhead/disabled",
    "obs-overhead/enabled",
    "recovery-overhead/clean",
    "recovery-overhead/buddy-clean",
    "recovery-overhead/kill-spare",
    "recovery-overhead/kill-shrink",
    "topology-jacobi/hypercube",
    "topology-jacobi/mesh2d",
    "topology-jacobi/torus2d",
    "topology-multigrid/hypercube",
    "topology-multigrid/mesh2d",
    "topology-multigrid/torus2d",
]

# The specialized-kernel fast path must stay allocation-free; one
# alloc/op of slack absorbs the amortized first-dispatch plan compile.
MAX_KERNEL_WARM_ALLOCS = 1


def fail(msg):
    print(f"check-bench: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with sys.stdin if path == "-" else open(path) as f:
        recs = json.load(f)

    if len(recs) < len(REQUIRED):
        fail(f"{len(recs)} records, want at least {len(REQUIRED)}")

    by_name = {}
    for i, rec in enumerate(recs):
        for field in ("name", "iterations", "ns_per_op", "allocs_per_op"):
            if field not in rec:
                fail(f"record {i} ({rec.get('name', '?')}): missing {field!r}")
        if rec["iterations"] <= 0 or rec["ns_per_op"] <= 0:
            fail(f"{rec['name']}: non-positive measurement: {rec}")
        if rec["allocs_per_op"] < 0:
            fail(f"{rec['name']}: negative allocs_per_op")
        by_name[rec["name"]] = rec

    missing = [name for name in REQUIRED if name not in by_name]
    if missing:
        fail(f"missing records: {', '.join(missing)}")

    warm = by_name["kernel-exec/warm"]
    warm_m = warm.get("metrics") or {}
    if warm["allocs_per_op"] > MAX_KERNEL_WARM_ALLOCS:
        fail(
            f"kernel-exec/warm allocates {warm['allocs_per_op']} per op "
            f"(max {MAX_KERNEL_WARM_ALLOCS}): the kernel fast path must stay allocation-free"
        )
    if warm_m.get("kernel_slow", 1) != 0:
        fail(f"kernel-exec/warm took the interpreter: {warm_m}")
    interp = by_name["kernel-exec/interp"]
    interp_m = interp.get("metrics") or {}
    if interp_m.get("kernel_fast", 1) != 0:
        fail(f"kernel-exec/interp took the kernel path: {interp_m}")
    if interp_m.get("slowdown", 0) <= 1:
        fail(
            f"interpreter not slower than the kernel "
            f"(slowdown {interp_m.get('slowdown')}): specialization regressed"
        )

    print(f"check-bench: {len(recs)} records ok "
          f"(kernel warm {warm['ns_per_op']:.0f} ns/op, "
          f"{warm['allocs_per_op']:.0f} allocs/op, "
          f"interp slowdown {interp_m['slowdown']:.1f}x)")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        fail("usage: check-bench.py bench.json")
    main(sys.argv[1])
