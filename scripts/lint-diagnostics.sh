#!/bin/sh
# lint-diagnostics.sh — the typed-diagnostics lint gate.
#
# The compilation front end (diagram model, checker, compiler, codegen)
# reports every problem as a typed diag.Diagnostic with a stable rule
# code; a bare fmt.Errorf there would produce an untyped error that
# -diag-json consumers and the editor message strip cannot key on.
# This script rejects any fmt.Errorf in those packages. Construct
# errors with diag.Errorf / diag.ErrorfAt (or checker.ruleErr) instead.
#
# Exit status: 0 clean, 1 violations found.
set -eu

cd "$(dirname "$0")/.."

gated="internal/diagram internal/checker internal/compiler internal/codegen"

bad=0
for pkg in $gated; do
    # Non-test sources only: tests may build arbitrary errors.
    for f in "$pkg"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        if grep -Hn 'fmt\.Errorf' "$f"; then
            bad=1
        fi
    done
done

if [ "$bad" -ne 0 ]; then
    echo "lint-diagnostics: bare fmt.Errorf in a diagnostic-typed package." >&2
    echo "Use diag.Errorf(rule, ...) / diag.ErrorfAt(rule, pos, ...) so the" >&2
    echo "error carries a stable rule code (see internal/diag/codes.go)." >&2
    exit 1
fi
echo "lint-diagnostics: ok (no bare fmt.Errorf in $gated)"
