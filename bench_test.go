// Benchmark harness: one benchmark per figure and per quantitative
// claim of the paper (the paper has no numbered tables; see DESIGN.md
// §4 for the experiment index and EXPERIMENTS.md for paper-vs-measured
// results). Each benchmark times the relevant operation and prints its
// paper-style report exactly once.
package repro_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/editor"
	"repro/internal/hypercube"
	"repro/internal/jacobi"
	"repro/internal/microcode"
	"repro/internal/multigrid"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/trace"
)

// --- F1: Figure 1, the simplified datapath diagram. ---

func BenchmarkFig1DatapathInventory(b *testing.B) {
	cfg := arch.Default()
	var out string
	for i := 0; i < b.N; i++ {
		out = render.Datapath(cfg.Nodes(), cfg.MemPlanes, cfg.PlaneBytes>>20,
			cfg.CachePlanes, cfg.CacheBytes>>10, cfg.ShiftDelayUnits,
			cfg.Triplets, cfg.Doublets, cfg.Singlets)
	}
	inv := arch.MustInventory(cfg)
	report := out + fmt.Sprintf(`
component inventory vs paper (§2):
  functional units/node   %3d   (paper: 32)
  ALSs                    %3d   (%d triplets, %d doublets, %d singlets)
  memory planes           %3d x %d MB = %d GB/node   (paper: 16 x 128 MB = 2 GB)
  data caches             %3d x %d KB double-buffered (paper: 16)
  shift/delay units       %3d   (paper: 2)
  peak rate          %8.0f MFLOPS/node   (paper: 640)
  64-node system     %8.2f GFLOPS, %d GB (paper: ~40 GFLOPS, 128 GB)
`, len(inv.FUs), len(inv.ALSs), cfg.Triplets, cfg.Doublets, cfg.Singlets,
		cfg.MemPlanes, cfg.PlaneBytes>>20, cfg.NodeMemoryBytes()>>30,
		cfg.CachePlanes, cfg.CacheBytes>>10, cfg.ShiftDelayUnits,
		cfg.PeakFLOPS()/1e6, cfg.PeakSystemFLOPS()/1e9, cfg.TotalMemoryBytes()>>30)
	reportOnce("F1 datapath (Figure 1)", report)
}

// --- F2/F11: the Jacobi pipeline diagram, drawn and completed. ---

func BenchmarkFig2JacobiDiagram(b *testing.B) {
	cfg := arch.Default()
	p := jacobi.NewModelProblem(8, 1e-4, 10)
	var doc *diagram.Document
	for i := 0; i < b.N; i++ {
		var err error
		doc, _, err = p.BuildDocument(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportOnce("F2 working diagram (Figure 2)", render.Netlist(doc.Pipes[0]))
}

func BenchmarkFig11CompletedJacobi(b *testing.B) {
	cfg := arch.Default()
	p := jacobi.NewModelProblem(8, 1e-4, 300)
	var res *jacobi.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = p.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	ref := p.Reference()
	doc, _, _ := p.BuildDocument(cfg)
	exact := 0
	for g := range ref.U {
		if res.U[g] == ref.U[g] {
			exact++
		}
	}
	b.ReportMetric(res.MFLOPS, "MFLOPS")
	b.ReportMetric(float64(res.Iterations), "iterations")
	reportOnce("F11 completed Jacobi pipeline (Figure 11)",
		render.Pipeline(doc.Pipes[0])+fmt.Sprintf(`
executed on the node simulator:
  converged            %v in %d iterations (reference: %d)
  bit-identical values %d / %d
  residual register    %.6e (reference %.6e)
  cycles               %d  (%.1f MFLOPS of %g peak)
`, res.Converged, res.Iterations, ref.Iters, exact, len(ref.U),
			res.Residual, ref.Residuals[len(ref.Residuals)-1],
			res.Stats.Cycles, res.MFLOPS, cfg.PeakFLOPS()/1e6))
}

// --- F3: Figure 3, the component pipeline. ---

func BenchmarkFig3EnvironmentPipeline(b *testing.B) {
	script := `
doc fig3
var u plane=0 base=0 len=256
var v plane=1 base=0 len=256
place memplane Mu at 1 2 plane=0
place memplane Mv at 40 2 plane=1
place singlet S at 20 2
op S.u0 mul constb=3
connect Mu.rd -> S.u0.a
connect S.u0.o -> Mv.wr
dma Mu rd var=u stride=1 count=256
dma Mv wr var=v stride=1 count=256
`
	for i := 0; i < b.N; i++ {
		env := core.MustNew(arch.Default())
		if _, _, err := env.BuildAndRun(script, 4); err != nil {
			b.Fatal(err)
		}
	}
	env := core.MustNew(arch.Default())
	events, _ := env.Script(script)
	prog, rep, err := env.Generate()
	if err != nil {
		b.Fatal(err)
	}
	reportOnce("F3 environment components (Figure 3)", fmt.Sprintf(`graphical editor  -> %d interactions accepted, semantic data structures built
checker           -> %d diagnostics on the complete document
microcode gen     -> %d instruction(s) x %d bits; pipeline fill %d cycles
executable        -> runs on the node simulator (see F11/E1)`,
		len(events), len(env.Check()), prog.Len(), prog.F.Bits, rep.Pipes[0].FillCycles))
}

// --- F4: the ALS icon palette. ---

func BenchmarkFig4ALSIcons(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = render.IconGallery()
	}
	reportOnce("F4 icon palette (Figure 4)", out)
}

// --- F5: the display window. ---

func BenchmarkFig5DisplayWindow(b *testing.B) {
	env := core.MustNew(arch.Default())
	if _, err := env.Script(jacobi.NewModelProblem(8, 1e-4, 10).Script()); err != nil {
		b.Fatal(err)
	}
	if err := env.Ed.Jump(0); err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		out = env.Window()
	}
	// The window is large; show the frame.
	lines := strings.Split(out, "\n")
	head := strings.Join(lines[:min(14, len(lines))], "\n")
	reportOnce("F5 display window (Figure 5)", head+"\n   ... ("+fmt.Sprint(len(lines))+" rows total)")
}

// --- F6/F7: icon selection and placement. ---

func BenchmarkFig6PlaceIcons(b *testing.B) {
	cmds := []string{
		"place triplet T1 at 30 1",
		"place triplet T2 at 30 12",
		"place triplet T3 at 48 4",
		"place triplet T4 at 64 8",
		"place sdu Z at 15 2",
		"place memplane Mu at 1 6 plane=0",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ed := editor.New(arch.MustInventory(arch.Default()), "fig6")
		for _, c := range cmds {
			if _, err := ed.Exec(c); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	ed := editor.New(arch.MustInventory(arch.Default()), "fig6")
	var log []string
	for _, c := range cmds {
		msg, _ := ed.Exec(c)
		log = append(log, "  > "+c+"   -- "+msg)
	}
	_, err := ed.Exec("place triplet T5 at 1 1")
	log = append(log, fmt.Sprintf("  > place triplet T5 at 1 1   -- REJECTED: %v", err))
	reportOnce("F6/F7 placing icons (Figures 6-7)", strings.Join(log, "\n"))
}

// --- F8: rubber-band connections with checker vetoes. ---

func BenchmarkFig8Connections(b *testing.B) {
	setup := func() *editor.Editor {
		ed := editor.New(arch.MustInventory(arch.Default()), "fig8")
		for _, c := range []string{
			"var u plane=0 base=0 len=256",
			"place memplane Mu at 1 2 plane=0",
			"place sdu Z at 14 2",
			"place singlet S at 30 2",
			"op S.u0 mov",
		} {
			if _, err := ed.Exec(c); err != nil {
				b.Fatal(err)
			}
		}
		return ed
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ed := setup()
		if _, err := ed.Exec("connect Mu.rd -> S.u0.a"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ed := setup()
	var log []string
	ok, _ := ed.Exec("connect Mu.rd -> Z.in")
	log = append(log, "  > connect Mu.rd -> Z.in      -- "+ok)
	_, err := ed.Exec("connect S.u0.o -> Z.in")
	log = append(log, fmt.Sprintf("  > connect S.u0.o -> Z.in     -- REJECTED: %v", err))
	_, err = ed.Exec("connect S.u0.o -> S.u0.a")
	log = append(log, fmt.Sprintf("  > connect S.u0.o -> S.u0.a   -- REJECTED: %v", err))
	reportOnce("F8 rubber-band wiring (Figure 8)", strings.Join(log, "\n"))
}

// --- F9: the DMA popup subwindow. ---

func BenchmarkFig9DMASubwindow(b *testing.B) {
	setup := func() *editor.Editor {
		ed := editor.New(arch.MustInventory(arch.Default()), "fig9")
		for _, c := range []string{
			"var u plane=3 base=10000 len=4096",
			"place cache C3 at 1 2 plane=3",
			"place memplane M3 at 1 8 plane=3",
		} {
			if _, err := ed.Exec(c); err != nil {
				b.Fatal(err)
			}
		}
		return ed
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ed := setup()
		if _, err := ed.Exec("dma M3 rd var=u offset=0 stride=4 count=1024"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ed := setup()
	var log []string
	// Figure 9's example fields: plane 3, offset 10000, stride 4.
	ok, _ := ed.Exec("dma M3 rd var=u offset=0 stride=4 count=1024")
	log = append(log, "  > dma M3 rd var=u stride=4 count=1024    -- "+ok)
	ok, _ = ed.Exec("dma C3 rd buf=1 stride=1 count=512 swap")
	log = append(log, "  > dma C3 rd buf=1 count=512 swap         -- "+ok)
	_, err := ed.Exec("dma M3 rd var=u offset=0 stride=4 count=1025")
	log = append(log, fmt.Sprintf("  > dma M3 rd stride=4 count=1025          -- REJECTED: %v", err))
	reportOnce("F9 DMA subwindow (Figure 9)", strings.Join(log, "\n"))
}

// --- F10: programming individual function units. ---

func BenchmarkFig10FunctionUnitOps(b *testing.B) {
	setup := func() *editor.Editor {
		ed := editor.New(arch.MustInventory(arch.Default()), "fig10")
		if _, err := ed.Exec("place triplet T at 1 1"); err != nil {
			b.Fatal(err)
		}
		return ed
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ed := setup()
		if _, err := ed.Exec("op T.u0 add"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ed := setup()
	var log []string
	for _, c := range []string{"op T.u0 iadd", "op T.u1 mul constb=0.5", "op T.u2 maxabs reduce init=0"} {
		msg, err := ed.Exec(c)
		if err != nil {
			b.Fatal(err)
		}
		log = append(log, "  > "+c+"   -- "+msg)
	}
	_, err := ed.Exec("op T.u1 iadd")
	log = append(log, fmt.Sprintf("  > op T.u1 iadd   -- REJECTED: %v", err))
	_, err = ed.Exec("op T.u0 max")
	log = append(log, fmt.Sprintf("  > op T.u0 max    -- REJECTED: %v", err))
	reportOnce("F10 function-unit menu (Figure 10)", strings.Join(log, "\n"))
}

// --- E1: Equation 1, numeric convergence. ---

func BenchmarkEq1JacobiConvergence(b *testing.B) {
	cfg := arch.Default()
	p := jacobi.NewModelProblem(12, 1e-5, 2000)
	var ref *jacobi.RefResult
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ref = p.Reference()
		}
	})
	var res *jacobi.Result
	b.Run("nsc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			res, err = p.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	if ref == nil {
		ref = p.Reference()
	}
	if res == nil {
		var err error
		res, err = p.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var hist strings.Builder
	for i := 0; i < len(ref.Residuals); i += 40 {
		fmt.Fprintf(&hist, "  iter %4d   residual %.6e\n", i+1, ref.Residuals[i])
	}
	fmt.Fprintf(&hist, "  iter %4d   residual %.6e (converged)\n", ref.Iters, ref.Residuals[len(ref.Residuals)-1])
	reportOnce("E1 Equation 1 convergence", fmt.Sprintf(
		"grid 12³, tol 1e-5: NSC %d iterations (reference %d), register %.6e\n%s",
		res.Iterations, ref.Iters, res.Residual, hist.String()))
}

// --- P1: peak 640 MFLOPS per node. ---

func BenchmarkP1PeakMFLOPS(b *testing.B) {
	cfg := arch.Default()
	const count = 1 << 16
	in, err := buildPeakPipeline(cfg, count)
	if err != nil {
		b.Fatal(err)
	}
	var node *sim.Node
	for i := 0; i < b.N; i++ {
		node, err = freshNodeWithRamp(cfg, count)
		if err != nil {
			b.Fatal(err)
		}
		if err := node.Exec(in); err != nil {
			b.Fatal(err)
		}
	}
	got := node.Stats.MFLOPS(cfg.ClockHz)
	b.ReportMetric(got, "simMFLOPS")
	reportOnce("P1 peak rate (§2: 640 MFLOPS/node)", fmt.Sprintf(`all 32 functional units chained over a %d-element vector:
  achieved %8.2f MFLOPS
  peak     %8.2f MFLOPS (32 units x 20 MHz)
  ratio    %8.2f%%  (loss = issue overhead + pipeline fill %d cycles)`,
		count, got, cfg.PeakFLOPS()/1e6, 100*got/(cfg.PeakFLOPS()/1e6), node.Stats.Cycles-count-int64(cfg.IssueOverheadCycles)))
}

// --- P2: 64 nodes -> ~40 GFLOPS, 128 GB; weak scaling. ---

func BenchmarkP2HypercubeScaling(b *testing.B) {
	cfg := arch.Default()
	const n, slab = 16, 4
	rows := []string{fmt.Sprintf("%5s %7s %12s %14s %12s %10s %8s",
		"nodes", "iters", "cycles", "comm-cycles", "GFLOPS", "peak-GF", "eff%")}
	run := func(dim, workers int) (*hypercube.JacobiResult, *hypercube.Machine) {
		p := 1 << uint(dim)
		g := jacobi.NewModelProblem(n, 1e-9, 4000)
		g.Nz = p*slab + 2
		g.F = make([]float64, g.Cells())
		g.U0 = make([]float64, g.Cells())
		g.Mask = make([]float64, g.Cells())
		for k := 0; k < g.Nz; k++ {
			for j := 0; j < g.N; j++ {
				for i := 0; i < g.N; i++ {
					idx := g.Index(i, j, k)
					g.F[idx] = 1
					if i > 0 && i < g.N-1 && j > 0 && j < g.N-1 && k > 0 && k < g.Nz-1 {
						g.Mask[idx] = 1
					}
				}
			}
		}
		m, err := hypercube.New(cfg, dim)
		if err != nil {
			b.Fatal(err)
		}
		m.StopAfter = 10 // fixed work per node: pure weak-scaling measurement
		m.Workers = workers
		res, err := m.SolveJacobi(g)
		if err != nil {
			b.Fatal(err)
		}
		return res, m
	}
	for dim := 0; dim <= 6; dim++ {
		var res *hypercube.JacobiResult
		var m *hypercube.Machine
		b.Run(fmt.Sprintf("nodes=%d", 1<<uint(dim)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, m = run(dim, 1)
			}
			b.ReportMetric(res.GFLOPS, "GFLOPS")
		})
		if res != nil {
			rows = append(rows, fmt.Sprintf("%5d %7d %12d %14d %12.3f %10.2f %7.1f%%",
				m.P(), res.Iterations, res.Cycles, m.CommCycles, res.GFLOPS, m.PeakGFLOPS(), 100*res.Efficiency(m)))
		}
	}
	// Host-side wall-clock scaling of the parallel driver: same 64-node
	// simulation, dispatched across 1, 4 and GOMAXPROCS pool workers.
	// Simulated metrics (cycles, residuals) are bit-identical across
	// worker counts; only host time changes.
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("nodes=64/workers=%d", w), func(b *testing.B) {
			var res *hypercube.JacobiResult
			for i := 0; i < b.N; i++ {
				res, _ = run(6, w)
			}
			b.ReportMetric(res.GFLOPS, "GFLOPS")
		})
	}
	rows = append(rows, fmt.Sprintf("\npaper's system claim: 64 nodes = %.2f GFLOPS peak, %d GB memory",
		cfg.PeakSystemFLOPS()/1e9, cfg.TotalMemoryBytes()>>30))
	reportOnce("P2 hypercube weak scaling (§2)", strings.Join(rows, "\n"))
}

// --- S9: the decode-once execution engine. ---

// BenchmarkPlanCache measures what the compiled-plan cache buys on the
// Figure 11 Jacobi sweep instruction: "decode-every-dispatch" recompiles
// the 5292-bit word into an ExecPlan on every Exec (the engine's
// behavior before the decode/run split), while "cached" decodes once
// and replays the plan — the steady state of every iterative solver in
// this repo, where one instruction executes thousands of times.
func BenchmarkPlanCache(b *testing.B) {
	cfg := arch.Default()
	p := jacobi.NewModelProblem(8, 1e-4, 10)
	doc, _, err := p.BuildDocument(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := codegen.New(arch.MustInventory(cfg))
	in, _, err := gen.Pipeline(doc, doc.Pipes[0])
	if err != nil {
		b.Fatal(err)
	}
	node := sim.MustNode(cfg)
	if err := p.Load(node); err != nil {
		b.Fatal(err)
	}
	b.Run("decode-every-dispatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := node.ExecUncached(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := node.Exec(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := node.PlanCacheStats()
	reportOnce("S9 plan cache (decode-once engine)", fmt.Sprintf(
		"Figure 11 Jacobi sweep, %d-bit instruction: %d plan(s) compiled, %d cache hits, %d misses\nthe decode layer runs once per distinct instruction; dispatch replays the immutable ExecPlan",
		gen.F.Bits, st.Entries, st.Hits, st.Misses))
}

// --- P3: "a few thousand bits per instruction, dozens of fields". ---

func BenchmarkP3MicrocodeWidth(b *testing.B) {
	cfg := arch.Default()
	f := microcode.MustFormat(cfg)
	in := f.NewInstr()
	in.SetFUOp(0, arch.OpAdd)
	var enc, dec int64
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.SetMemDMA(i%16, microcode.MemDMA{Enable: true, Addr: int64(i), Stride: 1, Count: 100})
		}
		enc = int64(b.N)
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = in.MemDMAOf(i % 16)
		}
		dec = int64(b.N)
	})
	_ = enc
	_ = dec
	groups := f.FieldGroups()
	var gl []string
	for _, name := range f.GroupNames() {
		gl = append(gl, fmt.Sprintf("  %-8s %5d bits", name, groups[name]))
	}
	reportOnce("P3 microcode width (§3)", fmt.Sprintf(
		"instruction width: %d bits in %d fields across %d field groups (paper: 'a few thousand bits ... dozens of separate fields')\n%s",
		f.Bits, f.NumFields(), len(groups), strings.Join(gl, "\n")))
}

// --- P4: the memory-plane allocation problem. ---

func BenchmarkP4PlaneAllocation(b *testing.B) {
	cfg := arch.Default()
	vars, uses := alloc.JacobiWorkload(512 * 1024)
	var naive, colored alloc.Assignment
	var err error
	for i := 0; i < b.N; i++ {
		naive, err = alloc.Naive(vars, cfg.MemPlanes, cfg.PlaneWords())
		if err != nil {
			b.Fatal(err)
		}
		colored, err = alloc.Color(vars, uses, cfg.MemPlanes, cfg.PlaneWords())
		if err != nil {
			b.Fatal(err)
		}
	}
	cn := alloc.Cost(naive, vars, uses, cfg)
	cc := alloc.Cost(colored, vars, uses, cfg)
	reportOnce("P4 plane allocation (§3)", fmt.Sprintf(`Jacobi working set (4 arrays x 512k words), one sweep pair:
  layout     conflicts  copy-instrs  extra-cycles  extra-words
  naive      %9d  %11d  %12d  %11d
  colored    %9d  %11d  %12d  %11d
the naive (capacity-only) layout packs co-streamed arrays into one
plane; every sweep must first copy them apart — §3's "multiple copies
of arrays, or ... relocate them between phases".`,
		cn.Conflicts, cn.CopyInstructions, cn.ExtraCycles, cn.ExtraWords,
		cc.Conflicts, cc.CopyInstructions, cc.ExtraCycles, cc.ExtraWords))
}

// --- A1: specification effort, visual environment vs raw microcode. ---

func BenchmarkA1SpecificationEffort(b *testing.B) {
	cfg := arch.Default()
	p := jacobi.NewModelProblem(8, 1e-4, 10)
	gen := codegen.New(arch.MustInventory(cfg))
	var in *microcode.Instr
	for i := 0; i < b.N; i++ {
		doc, _, err := p.BuildDocument(cfg)
		if err != nil {
			b.Fatal(err)
		}
		in, _, err = gen.Pipeline(doc, doc.Pipes[0])
		if err != nil {
			b.Fatal(err)
		}
	}
	// Count fields a hand microprogrammer would have to set: fields
	// whose value differs from the power-on instruction.
	fresh := gen.F.NewInstr()
	fieldsSet, bitsSet := 0, 0
	for _, fl := range gen.F.Fields {
		if in.W.Get(fl) != fresh.W.Get(fl) {
			fieldsSet++
			bitsSet += fl.Width
		}
	}
	script := p.Script()
	lines := 0
	for _, l := range strings.Split(script, "\n") {
		l = strings.TrimSpace(l)
		if l != "" && !strings.HasPrefix(l, "#") {
			lines++
		}
	}
	reportOnce("A1 specification effort (§6)", fmt.Sprintf(`one Jacobi instruction:
  raw microcode:      %4d fields explicitly set (%d bits of %d-bit word)
  visual environment: %4d editor interactions for the WHOLE program
                      (two pipelines + declarations + control flow);
                      timing delays, switch settings and DMA start
                      times all derived automatically`,
		fieldsSet, bitsSet, gen.F.Bits, lines))
}

// --- A2: edit-time checking vs generate-time discovery. ---

func BenchmarkA2CheckerAblation(b *testing.B) {
	type mistake struct {
		name string
		cmds []string // applied after a valid base session
	}
	base := []string{
		"var u plane=0 base=0 len=256",
		"place memplane Mu at 1 2 plane=0",
		"place triplet T at 20 1",
		"place sdu Z at 40 1",
		"dma Mu rd var=u stride=1 count=256",
	}
	mistakes := []mistake{
		{"5th triplet (inventory)", []string{"place triplet T2 at 1 1", "place triplet T3 at 1 1", "place triplet T4 at 1 1", "place triplet T5 at 1 1"}},
		{"duplicate plane", []string{"place memplane M2 at 1 9 plane=0"}},
		{"integer op on float slot", []string{"op T.u1 iadd"}},
		{"minmax op on integer slot", []string{"op T.u0 max"}},
		{"DMA overruns variable", []string{"dma Mu rd var=u stride=1 count=257"}},
		{"FU feeding the SDU", []string{"op T.u0 mov", "connect Mu.rd -> T.u0.a", "connect T.u0.o -> Z.in"}},
		{"delay beyond register file", []string{"op T.u0 mov", "connect Mu.rd -> T.u0.a delay=65"}},
		{"reduce with non-reducible op", []string{"op T.u0 sub reduce"}},
		{"9 SDU taps", []string{"taps Z 1 2 3 4 5 6 7 8 9"}},
		{"variable on plane 99", []string{"var w plane=99 base=0 len=4"}},
	}
	inv := arch.MustInventory(arch.Default())
	run := func() (caught int) {
		for _, m := range mistakes {
			ed := editor.New(inv, "ablation")
			for _, c := range base {
				if _, err := ed.Exec(c); err != nil {
					b.Fatal(err)
				}
			}
			rejected := false
			for _, c := range m.cmds {
				if _, err := ed.Exec(c); err != nil {
					rejected = true
					break
				}
			}
			if rejected {
				caught++
			}
		}
		return caught
	}
	var caught int
	for i := 0; i < b.N; i++ {
		caught = run()
	}
	reportOnce("A2 edit-time checking (§4/§6)", fmt.Sprintf(`error corpus of %d classic NSC programming mistakes:
  caught at edit time (command rejected): %d / %d
  with edit-time checking disabled every one of them would surface only
  at microcode generation — "errors are caught sooner when they do
  occur" (§6)`, len(mistakes), caught, len(mistakes)))
	if caught != len(mistakes) {
		b.Fatalf("only %d/%d mistakes caught at edit time", caught, len(mistakes))
	}
}

// --- A3: the compiler back end vs the hand-drawn diagram. ---

func BenchmarkA3CompilerBackend(b *testing.B) {
	cfg := arch.Default()
	inv := arch.MustInventory(cfg)
	p := jacobi.NewModelProblem(8, 1e-4, 10)
	src := fmt.Sprintf("v = u + mask*(( u@(1,0,0) + u@(-1,0,0) + u@(0,1,0) + u@(0,-1,0) + u@(0,0,1) + u@(0,0,-1) + %.17g*f) / 6 - u)", p.H*p.H)
	opts := compiler.Options{N: p.N, Nz: p.Nz,
		Planes: map[string]int{"u": jacobi.PlaneU, "f": jacobi.PlaneF, "mask": jacobi.PlaneMask, "v": jacobi.PlaneV}}
	var cres *compiler.Result
	for i := 0; i < b.N; i++ {
		var err error
		cres, err = compiler.Compile(src, inv, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	gen := codegen.New(inv)
	_, cinfo, err := gen.Pipeline(cres.Doc, cres.Doc.Pipes[0])
	if err != nil {
		b.Fatal(err)
	}
	hdoc, _, err := p.BuildDocument(cfg)
	if err != nil {
		b.Fatal(err)
	}
	_, hinfo, err := gen.Pipeline(hdoc, hdoc.Pipes[0])
	if err != nil {
		b.Fatal(err)
	}
	reportOnce("A3 compiler back end (§6 future work)", fmt.Sprintf(`Equation 1 compiled from the expression "%s..."
               FUs  fill-cycles  flops/elem  residual-check
  compiled    %4d  %11d  %10d  no (not expressible in the expression language)
  hand-drawn  %4d  %11d  %10d  yes (maxabs reduction + sequencer compare)
the compiler reproduces the update exactly but maps a deeper pipeline
(division instead of reciprocal-multiply) and cannot express the
convergence machinery — "it remains to be seen whether this approach
can compete with compiled high-level languages" (§6).`,
		src[:24], cinfo.FUsUsed, cinfo.FillCycles, cinfo.FLOPsPerElement,
		hinfo.FUsUsed, hinfo.FillCycles, hinfo.FLOPsPerElement))
}

// --- A4: the debugging/animation extension. ---

func BenchmarkA4DebugTrace(b *testing.B) {
	cfg := arch.Default()
	p := jacobi.NewModelProblem(6, 1e-3, 10)
	doc, _, err := p.BuildDocument(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := codegen.New(arch.MustInventory(cfg))
	in, info, err := gen.Pipeline(doc, doc.Pipes[0])
	if err != nil {
		b.Fatal(err)
	}
	node := sim.MustNode(cfg)
	if err := p.Load(node); err != nil {
		b.Fatal(err)
	}
	var samples map[diagram.PadRef]trace.Sample
	// Element N²+N+1+N² .. pick an interior element: grid g=(1,1,1) is
	// element e = g + N² = 43+36 = 79 for N=6.
	elem := int64(p.Index(1, 1, 1) + p.N*p.N)
	for i := 0; i < b.N; i++ {
		samples, err = trace.Capture(node, in, doc, doc.Pipes[0], info, elem)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportOnce("A4 debugging extension (§6)", trace.Annotate(doc.Pipes[0], samples))
}

// --- A5: the simplified architectural subset. ---

func BenchmarkA5SubsetModel(b *testing.B) {
	p := jacobi.NewModelProblem(8, 1e-4, 500)
	var full, sub *jacobi.Result
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			full, err = p.Run(arch.Default())
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("subset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			sub, err = p.SubsetRun(arch.Subset())
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	if full == nil {
		var err error
		if full, err = p.Run(arch.Default()); err != nil {
			b.Fatal(err)
		}
	}
	if sub == nil {
		var err error
		if sub, err = p.SubsetRun(arch.Subset()); err != nil {
			b.Fatal(err)
		}
	}
	fullDoc, _, _ := p.BuildDocument(arch.Default())
	subDoc, _, _ := p.SubsetBuild(arch.Subset())
	fullIcons, subIcons := 0, 0
	for _, pp := range fullDoc.Pipes {
		fullIcons += len(pp.Icons)
	}
	for _, pp := range subDoc.Pipes {
		subIcons += len(pp.Icons)
	}
	reportOnce("A5 architectural subset (§6)", fmt.Sprintf(`point Jacobi, 8³ grid:
                      full NSC      subset (8 float-only singlets, no SDU)
  pipelines        %9d     %9d  (stencil / blend / broadcast phases)
  icons            %9d     %9d
  copies of u      %9d     %9d  (planes occupied by the same array)
  instrs/sweep     %9.1f     %9.1f
  cycles/sweep     %9.0f     %9.0f
  MFLOPS           %9.1f     %9.1f
"by ignoring certain features of the architecture, it may become easier
to program, but performance may be adversely affected" — the subset
needs 3 instructions and 8 array copies per sweep where the full model
needs 1 and 0.`,
		len(fullDoc.Pipes), len(subDoc.Pipes), fullIcons, subIcons, 1, 8,
		float64(full.Stats.Instructions-1)/float64(full.Iterations),
		float64(sub.Stats.Instructions-1)/float64(sub.Iterations),
		float64(full.Stats.Cycles)/float64(full.Iterations),
		float64(sub.Stats.Cycles)/float64(sub.Iterations),
		full.MFLOPS, sub.MFLOPS))
}

// --- checker throughput: the knowledge base consulted per keystroke. ---

func BenchmarkCheckerFullDocument(b *testing.B) {
	cfg := arch.Default()
	p := jacobi.NewModelProblem(8, 1e-4, 10)
	doc, _, err := p.BuildDocument(cfg)
	if err != nil {
		b.Fatal(err)
	}
	chk := checker.New(arch.MustInventory(cfg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if es := checker.Errors(chk.CheckDocument(doc)); len(es) > 0 {
			b.Fatal(es)
		}
	}
}

// --- microcode generation throughput. ---

func BenchmarkCodegenJacobiDocument(b *testing.B) {
	cfg := arch.Default()
	p := jacobi.NewModelProblem(8, 1e-4, 10)
	doc, _, err := p.BuildDocument(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := codegen.New(arch.MustInventory(cfg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gen.Document(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- simulator throughput in simulated elements per second. ---

func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := arch.Default()
	const count = 1 << 15
	in, err := buildPeakPipeline(cfg, count)
	if err != nil {
		b.Fatal(err)
	}
	node, err := freshNodeWithRamp(cfg, count)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := node.Exec(in); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(count * 8)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- M1: the reference [6] workload — multigrid on the NSC. ---

func BenchmarkM1MultigridVCycle(b *testing.B) {
	cfg := arch.Default()
	var res *multigrid.Result
	var s *multigrid.Solver
	for i := 0; i < b.N; i++ {
		var err error
		s, err = multigrid.New(cfg, 17, 3, 1e-6, 100)
		if err != nil {
			b.Fatal(err)
		}
		res, err = s.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.VCycles), "vcycles")
	fineSweeps := res.VCycles * (s.Pre + s.Post)
	reportOnce("M1 multigrid (reference [6])", fmt.Sprintf(`V(%d,%d), ω=%.4f, levels 17³/9³/5³ on one node:
  converged in %d V-cycles (%d fine-grid sweeps; plain Jacobi needs ~1400)
  NSC residual register %.3e; host mirror bit-identical
  %d instructions, %d cycles, %.1f MFLOPS
smoothing, residual and correction all execute as visual-environment
pipelines; restriction/prolongation run on the host — the
between-phase data reformatting of §3.`,
		s.Pre, s.Post, s.Omega, res.VCycles, fineSweeps, res.Residual,
		res.Stats.Instructions, res.Stats.Cycles, res.Stats.MFLOPS(cfg.ClockHz)))
}

// --- S11: the fault-injection layer. ---

// BenchmarkS11FaultOverhead prices the robustness machinery added to
// the hypercube driver. "nil-plan" is the baseline solve (Machine.Faults
// == nil: the dispatch/exchange/merge paths see only nil checks);
// "armed-empty" installs a plan with zero events (the full bookkeeping
// allocated but never triggered); "faulted" runs a seeded kill plan
// with sweep-boundary checkpoints, so retries, backoff and snapshot
// cost all land in the measurement. The first two must agree on every
// simulated clock — zero-fault runs must cost nothing in machine time.
func BenchmarkS11FaultOverhead(b *testing.B) {
	cfg := arch.Default()
	build := func() *jacobi.Problem {
		g := jacobi.NewModelProblem(8, 1e-4, 400)
		g.Nz = 10 // 8 interior planes over the 4-node cube
		g.F = make([]float64, g.Cells())
		g.U0 = make([]float64, g.Cells())
		g.Mask = make([]float64, g.Cells())
		for k := 0; k < g.Nz; k++ {
			for j := 0; j < g.N; j++ {
				for i := 0; i < g.N; i++ {
					idx := g.Index(i, j, k)
					g.F[idx] = 1
					if i > 0 && i < g.N-1 && j > 0 && j < g.N-1 && k > 0 && k < g.Nz-1 {
						g.Mask[idx] = 1
					}
				}
			}
		}
		return g
	}
	run := func(plan *hypercube.FaultPlan, every int) (*hypercube.JacobiResult, *hypercube.Machine) {
		m, err := hypercube.New(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		m.Workers = 1
		m.StopAfter = 10
		m.Faults = plan
		m.CheckpointEvery = every
		res, err := m.SolveJacobi(build())
		if err != nil {
			b.Fatal(err)
		}
		return res, m
	}
	var nilRes, emptyRes, faultedRes *hypercube.JacobiResult
	var nilM, emptyM, faultedM *hypercube.Machine
	b.Run("nil-plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nilRes, nilM = run(nil, 0)
		}
	})
	b.Run("armed-empty", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			emptyRes, emptyM = run(hypercube.MustFaultPlan(), 0)
		}
	})
	b.Run("faulted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			faultedRes, faultedM = run(hypercube.RandomFaultPlan(42, 10, 4, 4), 3)
		}
	})
	if nilRes == nil || emptyRes == nil || faultedRes == nil {
		return
	}
	if nilM.MachineCycles != emptyM.MachineCycles || nilM.CommCycles != emptyM.CommCycles {
		b.Errorf("armed-but-empty plan changed the simulated clocks: %d/%d vs %d/%d",
			emptyM.MachineCycles, emptyM.CommCycles, nilM.MachineCycles, nilM.CommCycles)
	}
	if faultedRes.Residual != nilRes.Residual {
		b.Errorf("faulted solve diverged: residual %g vs %g", faultedRes.Residual, nilRes.Residual)
	}
	reportOnce("S11 fault-layer overhead (hypercube driver)", fmt.Sprintf(
		`10-sweep Jacobi on 4 nodes (8×8×10):
  nil plan      machine %d cycles, comm %d  (baseline)
  armed, empty  machine %d cycles, comm %d  (bit-identical: zero-fault overhead is zero)
  seeded faults machine %d cycles, comm %d  (+%d cycles of retries/backoff/snapshots)
  faulted counters: %s
  residual identical across all three runs: faults cost cycles, never accuracy`,
		nilM.MachineCycles, nilM.CommCycles,
		emptyM.MachineCycles, emptyM.CommCycles,
		faultedM.MachineCycles, faultedM.CommCycles,
		faultedM.MachineCycles-nilM.MachineCycles, faultedRes.Faults))
}
