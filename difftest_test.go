// Differential tests: the same solve replayed at several worker counts
// must produce bit-identical residual series, simulated clocks, and —
// with the unified observability layer armed — identical metric totals.
// CI runs these under the race detector (-race -run TestDifferential)
// so the worker-pool dispatch is checked for data races at the same
// time its determinism contract is checked for drift.
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/obs/difftest"
)

// difftestWorkers is the ladder every scenario climbs: sequential
// reference, then increasingly contended pools.
func difftestWorkers() []int {
	return []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)}
}

// TestDifferentialSolvers runs the full battery — Jacobi clean, serial
// exchange, faulted with checkpoint recovery, ECC with trap retry, and
// distributed multigrid — across the worker ladder.
func TestDifferentialSolvers(t *testing.T) {
	for _, sc := range difftest.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			if err := difftest.Check([]difftest.Scenario{sc}, difftestWorkers()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDifferentialSchedules cross-checks the two halo schedules: the
// overlapped gather/scatter path and the serial two-parity path promise
// identical simulated observables, not just internal consistency.
func TestDifferentialSchedules(t *testing.T) {
	scs := difftest.Scenarios()
	var clean, serial *difftest.Scenario
	for i := range scs {
		switch scs[i].Name {
		case "jacobi/clean":
			clean = &scs[i]
		case "jacobi/serial-exchange":
			serial = &scs[i]
		}
	}
	if clean == nil || serial == nil {
		t.Fatal("battery is missing the clean or serial-exchange scenario")
	}
	a, err := clean.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := serial.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := difftest.Diff("overlap", a, "serial", b); err != nil {
		t.Error(err)
	}
}

// TestDifferentialRecovery pins the harness's strongest claim: the
// faulted run's residual series matches the clean run's bit for bit —
// recovery restores the exact trajectory — while its clocks grow and
// its fault metrics are nonzero.
func TestDifferentialRecovery(t *testing.T) {
	scs := difftest.Scenarios()
	var clean, faulted *difftest.Scenario
	for i := range scs {
		switch scs[i].Name {
		case "jacobi/clean":
			clean = &scs[i]
		case "jacobi/faulted":
			faulted = &scs[i]
		}
	}
	if clean == nil || faulted == nil {
		t.Fatal("battery is missing the clean or faulted scenario")
	}
	a, err := clean.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faulted.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series length %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Errorf("residual[%d]: clean %.17g faulted %.17g", i, a.Series[i], b.Series[i])
		}
	}
	if b.MachineCycles <= a.MachineCycles {
		t.Errorf("faulted run not slower: %d vs clean %d", b.MachineCycles, a.MachineCycles)
	}
}

// TestDifferentialTopology adds the topology axis to the differential
// battery: every fabric's scenarios are worker-count-invariant on
// their own, and across fabrics the same scenario — clean, both
// degraded-recovery paths, distributed multigrid — produces the same
// solution bits. Only the simulated comm clocks may differ between
// fabrics, which is exactly what SameSolution ignores.
func TestDifferentialTopology(t *testing.T) {
	topologies := difftest.Topologies()
	if len(topologies) < 3 {
		t.Fatalf("topo registry lists %d fabrics, want at least 3", len(topologies))
	}
	ref := difftest.TopologyBattery("hypercube")
	refSigs := make([]*difftest.Signature, len(ref))
	for i := range ref {
		sig, err := ref[i].Run(4)
		if err != nil {
			t.Fatal(err)
		}
		refSigs[i] = sig
	}
	for _, name := range topologies {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			battery := difftest.TopologyBattery(name)
			if err := difftest.Check(battery, []int{1, 4}); err != nil {
				t.Error(err)
			}
			if name == "hypercube" {
				return
			}
			if len(battery) != len(ref) {
				t.Fatalf("battery has %d scenarios, hypercube reference %d", len(battery), len(ref))
			}
			for i := range battery {
				sig, err := battery[i].Run(4)
				if err != nil {
					t.Fatal(err)
				}
				if err := difftest.SameSolution(ref[i].Name, refSigs[i], battery[i].Name, sig); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestDifferentialKernel pins the specialized-kernel contract on every
// fabric: each battery scenario — clean Jacobi, trap-armed ECC retry,
// spare-absorbed node loss, distributed multigrid — is solved with the
// execution kernels on and with every node pinned to the reference
// interpreter, and the two Signatures must agree everywhere outside
// the sim.kernel.* path counters. Check then climbs the worker ladder
// on the kernels-on runs, so kernel dispatch is also proven
// worker-count-invariant.
func TestDifferentialKernel(t *testing.T) {
	for _, name := range difftest.Topologies() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if err := difftest.Check(difftest.KernelBattery(name), []int{1, 4}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDifferentialDegraded pins the degraded-mode contract against the
// clean baseline: after a permanent node loss — absorbed by a hot spare
// or by a shrinking re-partition — the residual series still matches
// the clean run bit for bit, and the recovery's simulated price shows
// up as strictly slower clocks.
func TestDifferentialDegraded(t *testing.T) {
	scs := difftest.Scenarios()
	byName := make(map[string]*difftest.Scenario, len(scs))
	for i := range scs {
		byName[scs[i].Name] = &scs[i]
	}
	clean := byName["jacobi/clean"]
	if clean == nil {
		t.Fatal("battery is missing the clean scenario")
	}
	a, err := clean.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"jacobi/degraded-spare", "jacobi/degraded-shrink"} {
		sc := byName[name]
		if sc == nil {
			t.Fatalf("battery is missing the %s scenario", name)
		}
		b, err := sc.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Series) != len(b.Series) {
			t.Fatalf("%s: series length %d vs clean %d", name, len(b.Series), len(a.Series))
		}
		for i := range a.Series {
			if a.Series[i] != b.Series[i] {
				t.Errorf("%s residual[%d]: clean %.17g degraded %.17g", name, i, a.Series[i], b.Series[i])
			}
		}
		if b.MachineCycles <= a.MachineCycles {
			t.Errorf("%s: degraded run not slower: %d vs clean %d", name, b.MachineCycles, a.MachineCycles)
		}
	}
}
