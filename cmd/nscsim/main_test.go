package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCLI invokes the in-process entry point and returns its output.
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (re-run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("output does not match %s (re-run with -update to regenerate):\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestJacobiGoldenClean pins the text report of a clean fixed-sweep
// multi-node solve. The simulation is fully deterministic, so the
// output is stable to the byte.
func TestJacobiGoldenClean(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "6")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "clean", stdout)
}

// TestJacobiGoldenFaulted pins the report of a faulted run: injected
// kills and a stall, retry/backoff accounting and sweep-boundary
// checkpoints — with the same solve outcome as the clean run.
func TestJacobiGoldenFaulted(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6",
		"-faults", "dispatch:kill@2:1:repeat=2,exchange:stall@3:0:stall=500",
		"-checkpoint-every", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "faulted", stdout)

	// The faulted run's solve line must equal the clean run's: faults
	// cost cycles, never accuracy.
	clean, _, _ := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "6")
	if jacobiLine(stdout) != jacobiLine(clean) {
		t.Errorf("faulted solve diverged:\n%s\n%s", jacobiLine(stdout), jacobiLine(clean))
	}
}

// TestJacobiCheckpointRestartCLI: -checkpoint persists a snapshot and
// -restore resumes from it to the identical solve report.
func TestJacobiCheckpointRestartCLI(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "solve.ckpt")
	full, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6", "-checkpoint-every", "2", "-checkpoint", ck)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	resumed, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6", "-restore", ck)
	if code != 0 {
		t.Fatalf("restore exit %d, stderr: %s", code, stderr)
	}
	if jacobiLine(resumed) != jacobiLine(full) {
		t.Errorf("restored solve diverged:\n%s\n%s", jacobiLine(resumed), jacobiLine(full))
	}
	if !strings.Contains(resumed, "restores=0") {
		t.Errorf("unexpected restore counters:\n%s", resumed)
	}
}

func TestJacobiBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-jacobi", "8", "-faults", "teleport:kill@1:0"}, // bad fault spec
		{"-jacobi", "8", "-restore", "/nonexistent/ck"},  // missing snapshot
		{},                             // no mode selected
		{"-prog", "/nonexistent.nscm"}, // missing program
	} {
		if _, _, code := runCLI(t, args...); code == 0 {
			t.Errorf("args %v: exit 0, want failure", args)
		}
	}
}

// jacobiLine extracts the solve-outcome line from a report.
func jacobiLine(out string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "jacobi:") {
			return line
		}
	}
	return ""
}

// TestJacobiECCRetryCLI: the ISSUE's worked example — a seeded
// double-bit ECC fault under the retry policy converges to the same
// solve line as the clean run, with the recovery on the traps line.
func TestJacobiECCRetryCLI(t *testing.T) {
	clean, _, _ := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "6")
	faulted, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6",
		"-trap-policy", "retry", "-ecc-faults", "1:0:70:double")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if jacobiLine(faulted) != jacobiLine(clean) {
		t.Errorf("faulted solve diverged:\n%s\n%s", jacobiLine(faulted), jacobiLine(clean))
	}
	if !strings.Contains(faulted, "uncorrectable=1") || !strings.Contains(faulted, "retries=1") {
		t.Errorf("traps line missing the recovery:\n%s", faulted)
	}

	// Halt policy: the same fault fails the run naming the site.
	_, stderr, code = runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6",
		"-trap-policy", "halt", "-ecc-faults", "1:0:70:double")
	if code == 0 {
		t.Fatal("halt policy exited 0 on an uncorrectable fault")
	}
	for _, frag := range []string{"node 1", "plane 0", "addr 70", "cycle"} {
		if !strings.Contains(stderr, frag) {
			t.Errorf("halt error %q does not name %q", stderr, frag)
		}
	}
}

// TestVerifyCheckpointCLI: -verify-checkpoint accepts a pristine
// snapshot and rejects the same file with one flipped bit.
func TestVerifyCheckpointCLI(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "solve.ckpt")
	_, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6", "-checkpoint-every", "2", "-checkpoint", ck)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	stdout, stderr, code := runCLI(t, "-verify-checkpoint", ck)
	if code != 0 {
		t.Fatalf("pristine snapshot rejected (exit %d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "ok") {
		t.Errorf("verify output: %s", stdout)
	}

	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(ck, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code = runCLI(t, "-verify-checkpoint", ck)
	if code == 0 {
		t.Fatal("corrupt snapshot verified")
	}
	if !strings.Contains(stderr, "corrupt") && !strings.Contains(stderr, "truncated") {
		t.Errorf("corruption error: %s", stderr)
	}
}

// TestMetricsJSONGolden pins the -metrics-json document of a clean
// fixed-sweep multi-node solve byte for byte. Every recorded value
// derives from simulated state (node cycle clocks, engine critical
// path), so the document is deterministic at any worker count.
func TestMetricsJSONGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	_, stderr, code := runCLI(t, "-jacobi", "8", "-cube", "2", "-sweeps", "4", "-metrics-json", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics", string(got))
}

// TestTraceOutChromeFormat: -trace-out on a 4-rank solve writes a
// trace_event document Perfetto can load — an events array with the
// engine phase track (tid 0) and one track per ring rank (tid 1..4).
func TestTraceOutChromeFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	_, stderr, code := runCLI(t, "-jacobi", "8", "-cube", "2", "-sweeps", "4", "-trace-out", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	tids := map[int]bool{}
	phases := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		tids[ev.TID] = true
		if ev.TID == 0 {
			phases[ev.Name] = true
		}
	}
	for tid := 0; tid <= 4; tid++ {
		if !tids[tid] {
			t.Errorf("no events on track %d (tracks: %v)", tid, tids)
		}
	}
	for _, ph := range []string{"dispatch", "combine", "exchange"} {
		if !phases[ph] {
			t.Errorf("engine track missing phase %q (has %v)", ph, phases)
		}
	}
}

// TestBenchJSONGolden pins the shape of the -bench-json report — the
// probe names and their metric keys, in order — with the measured
// numbers dropped (wall time varies run to run). The simulated-clock
// metrics are then spot-checked directly: the obs-overhead pair must
// report identical machine and comm cycles, the disabled-vs-enabled
// determinism contract.
func TestBenchJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("bench emitter runs full benchmark probes (~10s)")
	}
	stdout, stderr, code := runCLI(t, "-bench-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var recs []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(stdout), &recs); err != nil {
		t.Fatalf("bench output is not JSON: %v", err)
	}
	var sb strings.Builder
	byName := map[string]map[string]float64{}
	for _, r := range recs {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&sb, "%s [%s]\n", r.Name, strings.Join(keys, " "))
		byName[r.Name] = r.Metrics
	}
	checkGolden(t, "bench-shape", sb.String())

	off, on := byName["obs-overhead/disabled"], byName["obs-overhead/enabled"]
	if off == nil || on == nil {
		t.Fatal("obs-overhead records missing")
	}
	if off["machine_cycles"] == 0 ||
		off["machine_cycles"] != on["machine_cycles"] ||
		off["comm_cycles"] != on["comm_cycles"] {
		t.Errorf("obs layer changed the simulated clocks: disabled=%v enabled=%v", off, on)
	}

	// Recovery overhead: buddy mirroring on a clean run must not move a
	// single simulated cycle, and each kill record must report exactly
	// one recovery whose simulated price is positive.
	clean, buddy := byName["recovery-overhead/clean"], byName["recovery-overhead/buddy-clean"]
	if clean == nil || buddy == nil {
		t.Fatal("recovery-overhead records missing")
	}
	if clean["machine_cycles"] == 0 ||
		clean["machine_cycles"] != buddy["machine_cycles"] ||
		clean["comm_cycles"] != buddy["comm_cycles"] {
		t.Errorf("buddy mirror changed the simulated clocks: clean=%v buddy=%v", clean, buddy)
	}
	for _, name := range []string{"recovery-overhead/kill-spare", "recovery-overhead/kill-shrink"} {
		m := byName[name]
		if m == nil {
			t.Fatalf("%s record missing", name)
		}
		if m["recoveries"] != 1 || m["cycles_lost"] <= 0 {
			t.Errorf("%s: recoveries=%v cycles_lost=%v, want 1 recovery at a positive price", name, m["recoveries"], m["cycles_lost"])
		}
	}
}

// TestProfileFlagsSmoke: -cpuprofile and -memprofile write non-empty
// pprof files and leave the report byte-identical to the unprofiled
// run — the taps observe the host process, never the simulation.
func TestProfileFlagsSmoke(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	plain, _, _ := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "4")
	profiled, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "4", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if profiled != plain {
		t.Errorf("profiling changed the report:\n%s\n%s", profiled, plain)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}

	// An unwritable profile path is a run error, not a silent no-op.
	if _, _, code := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "2",
		"-cpuprofile", filepath.Join(dir, "no", "such", "dir", "cpu.pprof")); code == 0 {
		t.Error("unwritable -cpuprofile exited 0")
	}
}

// TestNoKernelFlagCLI: -no-kernel pins the interpreter and changes
// nothing observable in the report — the kernel contract at CLI level.
func TestNoKernelFlagCLI(t *testing.T) {
	kernel, _, _ := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "6")
	interp, stderr, code := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "6", "-no-kernel")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if interp != kernel {
		t.Errorf("-no-kernel changed the report:\n%s\n%s", interp, kernel)
	}
}

func TestTrapFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-jacobi", "8", "-trap-policy", "panic"},          // unknown policy
		{"-jacobi", "8", "-ecc-faults", "1:0:70:triple"},   // bad ECC kind
		{"-jacobi", "8", "-ecc-faults", "9:0:70:double"},   // rank off the cube
		{"-prog", "x.nscm", "-ecc-faults", "0:0:1:single"}, // wrong mode
		{"-verify-checkpoint", "/nonexistent/ck"},
	} {
		if _, _, code := runCLI(t, args...); code == 0 {
			t.Errorf("args %v: exit 0, want failure", args)
		}
	}
}

// TestJacobiKillRecoveryCLI: -kill permanently loses a rank mid-solve.
// With -spares the dead slot is refilled from the pool; without, the
// solve re-partitions over the survivors. Either way the solve line is
// bit-identical to the clean run and the report says what happened.
func TestJacobiKillRecoveryCLI(t *testing.T) {
	clean, _, _ := runCLI(t, "-jacobi", "8", "-cube", "2", "-sweeps", "8")
	if strings.Contains(clean, "recovery:") {
		t.Error("clean report grew a recovery line")
	}

	spare, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "2", "-sweeps", "8", "-kill", "3:1", "-spares", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "kill-spare", spare)
	if jacobiLine(spare) != jacobiLine(clean) {
		t.Errorf("spare-recovered solve diverged:\n%s\n%s", jacobiLine(spare), jacobiLine(clean))
	}
	if !strings.Contains(spare, "spares=1") || !strings.Contains(spare, "4 node(s) live") {
		t.Errorf("spare recovery line:\n%s", spare)
	}

	shrink, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "2", "-sweeps", "8", "-kill", "3:1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if jacobiLine(shrink) != jacobiLine(clean) {
		t.Errorf("shrink-recovered solve diverged:\n%s\n%s", jacobiLine(shrink), jacobiLine(clean))
	}
	if !strings.Contains(shrink, "shrinks=1") || !strings.Contains(shrink, "3 node(s) live") {
		t.Errorf("shrink recovery line:\n%s", shrink)
	}

	for _, bad := range []string{"3", "x:1", "3:x"} {
		if _, _, code := runCLI(t, "-jacobi", "8", "-cube", "2", "-kill", bad); code == 0 {
			t.Errorf("-kill %q: exit 0, want failure", bad)
		}
	}
}
