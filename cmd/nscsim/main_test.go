package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCLI invokes the in-process entry point and returns its output.
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (re-run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("output does not match %s (re-run with -update to regenerate):\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestJacobiGoldenClean pins the text report of a clean fixed-sweep
// multi-node solve. The simulation is fully deterministic, so the
// output is stable to the byte.
func TestJacobiGoldenClean(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "6")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "clean", stdout)
}

// TestJacobiGoldenFaulted pins the report of a faulted run: injected
// kills and a stall, retry/backoff accounting and sweep-boundary
// checkpoints — with the same solve outcome as the clean run.
func TestJacobiGoldenFaulted(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6",
		"-faults", "dispatch:kill@2:1:repeat=2,exchange:stall@3:0:stall=500",
		"-checkpoint-every", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "faulted", stdout)

	// The faulted run's solve line must equal the clean run's: faults
	// cost cycles, never accuracy.
	clean, _, _ := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "6")
	if jacobiLine(stdout) != jacobiLine(clean) {
		t.Errorf("faulted solve diverged:\n%s\n%s", jacobiLine(stdout), jacobiLine(clean))
	}
}

// TestJacobiCheckpointRestartCLI: -checkpoint persists a snapshot and
// -restore resumes from it to the identical solve report.
func TestJacobiCheckpointRestartCLI(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "solve.ckpt")
	full, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6", "-checkpoint-every", "2", "-checkpoint", ck)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	resumed, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6", "-restore", ck)
	if code != 0 {
		t.Fatalf("restore exit %d, stderr: %s", code, stderr)
	}
	if jacobiLine(resumed) != jacobiLine(full) {
		t.Errorf("restored solve diverged:\n%s\n%s", jacobiLine(resumed), jacobiLine(full))
	}
	if !strings.Contains(resumed, "restores=0") {
		t.Errorf("unexpected restore counters:\n%s", resumed)
	}
}

func TestJacobiBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-jacobi", "8", "-faults", "teleport:kill@1:0"}, // bad fault spec
		{"-jacobi", "8", "-restore", "/nonexistent/ck"},  // missing snapshot
		{},                             // no mode selected
		{"-prog", "/nonexistent.nscm"}, // missing program
	} {
		if _, _, code := runCLI(t, args...); code == 0 {
			t.Errorf("args %v: exit 0, want failure", args)
		}
	}
}

// jacobiLine extracts the solve-outcome line from a report.
func jacobiLine(out string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "jacobi:") {
			return line
		}
	}
	return ""
}
