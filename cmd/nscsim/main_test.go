package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCLI invokes the in-process entry point and returns its output.
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (re-run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("output does not match %s (re-run with -update to regenerate):\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestJacobiGoldenClean pins the text report of a clean fixed-sweep
// multi-node solve. The simulation is fully deterministic, so the
// output is stable to the byte.
func TestJacobiGoldenClean(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "6")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "clean", stdout)
}

// TestJacobiGoldenFaulted pins the report of a faulted run: injected
// kills and a stall, retry/backoff accounting and sweep-boundary
// checkpoints — with the same solve outcome as the clean run.
func TestJacobiGoldenFaulted(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6",
		"-faults", "dispatch:kill@2:1:repeat=2,exchange:stall@3:0:stall=500",
		"-checkpoint-every", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "faulted", stdout)

	// The faulted run's solve line must equal the clean run's: faults
	// cost cycles, never accuracy.
	clean, _, _ := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "6")
	if jacobiLine(stdout) != jacobiLine(clean) {
		t.Errorf("faulted solve diverged:\n%s\n%s", jacobiLine(stdout), jacobiLine(clean))
	}
}

// TestJacobiCheckpointRestartCLI: -checkpoint persists a snapshot and
// -restore resumes from it to the identical solve report.
func TestJacobiCheckpointRestartCLI(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "solve.ckpt")
	full, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6", "-checkpoint-every", "2", "-checkpoint", ck)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	resumed, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6", "-restore", ck)
	if code != 0 {
		t.Fatalf("restore exit %d, stderr: %s", code, stderr)
	}
	if jacobiLine(resumed) != jacobiLine(full) {
		t.Errorf("restored solve diverged:\n%s\n%s", jacobiLine(resumed), jacobiLine(full))
	}
	if !strings.Contains(resumed, "restores=0") {
		t.Errorf("unexpected restore counters:\n%s", resumed)
	}
}

func TestJacobiBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-jacobi", "8", "-faults", "teleport:kill@1:0"}, // bad fault spec
		{"-jacobi", "8", "-restore", "/nonexistent/ck"},  // missing snapshot
		{},                             // no mode selected
		{"-prog", "/nonexistent.nscm"}, // missing program
	} {
		if _, _, code := runCLI(t, args...); code == 0 {
			t.Errorf("args %v: exit 0, want failure", args)
		}
	}
}

// jacobiLine extracts the solve-outcome line from a report.
func jacobiLine(out string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "jacobi:") {
			return line
		}
	}
	return ""
}

// TestJacobiECCRetryCLI: the ISSUE's worked example — a seeded
// double-bit ECC fault under the retry policy converges to the same
// solve line as the clean run, with the recovery on the traps line.
func TestJacobiECCRetryCLI(t *testing.T) {
	clean, _, _ := runCLI(t, "-jacobi", "8", "-cube", "1", "-sweeps", "6")
	faulted, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6",
		"-trap-policy", "retry", "-ecc-faults", "1:0:70:double")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if jacobiLine(faulted) != jacobiLine(clean) {
		t.Errorf("faulted solve diverged:\n%s\n%s", jacobiLine(faulted), jacobiLine(clean))
	}
	if !strings.Contains(faulted, "uncorrectable=1") || !strings.Contains(faulted, "retries=1") {
		t.Errorf("traps line missing the recovery:\n%s", faulted)
	}

	// Halt policy: the same fault fails the run naming the site.
	_, stderr, code = runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6",
		"-trap-policy", "halt", "-ecc-faults", "1:0:70:double")
	if code == 0 {
		t.Fatal("halt policy exited 0 on an uncorrectable fault")
	}
	for _, frag := range []string{"node 1", "plane 0", "addr 70", "cycle"} {
		if !strings.Contains(stderr, frag) {
			t.Errorf("halt error %q does not name %q", stderr, frag)
		}
	}
}

// TestVerifyCheckpointCLI: -verify-checkpoint accepts a pristine
// snapshot and rejects the same file with one flipped bit.
func TestVerifyCheckpointCLI(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "solve.ckpt")
	_, stderr, code := runCLI(t,
		"-jacobi", "8", "-cube", "1", "-sweeps", "6", "-checkpoint-every", "2", "-checkpoint", ck)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	stdout, stderr, code := runCLI(t, "-verify-checkpoint", ck)
	if code != 0 {
		t.Fatalf("pristine snapshot rejected (exit %d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "ok") {
		t.Errorf("verify output: %s", stdout)
	}

	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(ck, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code = runCLI(t, "-verify-checkpoint", ck)
	if code == 0 {
		t.Fatal("corrupt snapshot verified")
	}
	if !strings.Contains(stderr, "corrupt") && !strings.Contains(stderr, "truncated") {
		t.Errorf("corruption error: %s", stderr)
	}
}

func TestTrapFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-jacobi", "8", "-trap-policy", "panic"},          // unknown policy
		{"-jacobi", "8", "-ecc-faults", "1:0:70:triple"},   // bad ECC kind
		{"-jacobi", "8", "-ecc-faults", "9:0:70:double"},   // rank off the cube
		{"-prog", "x.nscm", "-ecc-faults", "0:0:1:single"}, // wrong mode
		{"-verify-checkpoint", "/nonexistent/ck"},
	} {
		if _, _, code := runCLI(t, args...); code == 0 {
			t.Errorf("args %v: exit 0, want failure", args)
		}
	}
}
