// Command nscsim executes assembled NSC microcode on the node
// simulator and reports the sequencer outcome and performance
// statistics.
//
// Usage:
//
//	nscsim [-subset] -prog prog.nscm [-max n] [-load plane:addr:file] [-dump plane:addr:count]
//
// -load fills a memory plane from a whitespace-separated list of
// float64 values before the run; -dump prints plane contents after.
// Both flags repeat.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/microcode"
	"repro/internal/sim"
)

type multi []string

func (m *multi) String() string     { return strings.Join(*m, ",") }
func (m *multi) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	subset := flag.Bool("subset", false, "use the simplified architectural subset model")
	progPath := flag.String("prog", "", "microcode program to execute")
	max := flag.Int64("max", 0, "instruction budget (0 = default)")
	var loads, dumps multi
	flag.Var(&loads, "load", "plane:addr:file — preload plane data")
	flag.Var(&dumps, "dump", "plane:addr:count — print plane words after the run")
	flag.Parse()

	if *progPath == "" {
		fmt.Fprintln(os.Stderr, "usage: nscsim -prog prog.nscm [-load plane:addr:file] [-dump plane:addr:count]")
		os.Exit(2)
	}
	cfg := arch.Default()
	if *subset {
		cfg = arch.Subset()
	}
	node, err := sim.NewNode(cfg)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*progPath)
	if err != nil {
		fatal(err)
	}
	prog, err := microcode.ReadProgram(f, node.F)
	f.Close()
	if err != nil {
		fatal(err)
	}

	for _, l := range loads {
		plane, addr, path, err := splitRef(l)
		if err != nil {
			fatal(err)
		}
		vals, err := readFloats(path)
		if err != nil {
			fatal(err)
		}
		if err := node.WriteWords(plane, addr, vals); err != nil {
			fatal(err)
		}
	}

	res, err := node.Run(prog, *max)
	if err != nil {
		fatal(err)
	}
	st := node.Stats
	fmt.Printf("executed %d instruction(s), halted at pc %d\n", res.Executed, res.FinalPC)
	fmt.Printf("cycles %d (%.3f ms at %.0f MHz)  FLOPs %d  %.1f MFLOPS  interrupts %d  flags %016b\n",
		st.Cycles, st.Seconds(cfg.ClockHz)*1e3, cfg.ClockHz/1e6, st.FLOPs, st.MFLOPS(cfg.ClockHz), len(node.IRQs), node.Flags)

	for _, d := range dumps {
		plane, addr, countStr, err := splitRef(d)
		if err != nil {
			fatal(err)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil {
			fatal(fmt.Errorf("dump count: %w", err))
		}
		vals, err := node.ReadWords(plane, addr, count)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("plane %d @%d:", plane, addr)
		for _, v := range vals {
			fmt.Printf(" %g", v)
		}
		fmt.Println()
	}
}

// splitRef parses "plane:addr:rest".
func splitRef(s string) (plane int, addr int64, rest string, err error) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return 0, 0, "", fmt.Errorf("malformed reference %q (want plane:addr:x)", s)
	}
	if plane, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, "", fmt.Errorf("plane in %q: %w", s, err)
	}
	if addr, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return 0, 0, "", fmt.Errorf("addr in %q: %w", s, err)
	}
	return plane, addr, parts[2], nil
}

func readFloats(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var vals []float64
	sc := bufio.NewScanner(f)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		vals = append(vals, v)
	}
	return vals, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nscsim:", err)
	os.Exit(1)
}
