// Command nscsim executes assembled NSC microcode on the node
// simulator and reports the sequencer outcome and performance
// statistics.
//
// Usage:
//
//	nscsim [-subset] -prog prog.nscm [-max n] [-par n] [-load plane:addr:file] [-dump plane:addr:count]
//	nscsim -jacobi n [-cube d] [-sweeps n] [-faults spec] [-checkpoint-every n] [-checkpoint file] [-restore file]
//	nscsim -verify-checkpoint file
//
// -load fills a memory plane from a whitespace-separated list of
// float64 values before the run; -dump prints plane contents after.
// Both flags repeat. -par n runs the program SPMD-style on n simulated
// nodes concurrently through the bounded worker pool (every node gets
// the same program and the same -load data; -dump reads node 0), the
// multi-node shape of the paper's hypercube driver. The report always
// includes the decoded-instruction (plan) cache counters: with the
// decode-once engine, looping programs compile each distinct
// instruction once and replay the compiled pipeline configuration.
//
// -jacobi n switches to the multi-node driver: it solves the paper's
// n×n model Poisson problem on a 2^d-node machine (-cube d), two
// interior planes per node. -topology picks the interconnect fabric —
// hypercube (the default), mesh2d or torus2d — which changes only the
// simulated comm clocks: grids and residual series are bit-identical
// across fabrics. -sweeps fixes the sweep count (0 runs to
// convergence). -faults arms a deterministic fault plan (see
// hypercube.ParseFaultPlan for the syntax: either an event list like
// "dispatch:kill@2:1:repeat=2" or "seed@S:sweeps=N:ranks=P:events=K"),
// -checkpoint-every snapshots the solve at sweep boundaries,
// -checkpoint persists the latest snapshot to a file, and -restore
// resumes a solve from one.
//
// -kill "sweep:rank[,...]" is shorthand for permanent node deaths
// (dispatch:kill-forever events; it composes with -faults): the run
// then arms buddy mirroring and degraded-mode recovery, refilling each
// dead slot from the -spares pool or re-partitioning the solve over
// the survivors, and the report gains a "recovery:" line. The solve
// outcome is bit-identical to the fault-free run either way — only the
// clocks grow.
//
// The exception subsystem is armed with -trap-policy (halt, retry or
// quiet), -watchdog (a sequencer cycle budget per instruction) and
// -ecc-faults, which seeds memory-plane ECC events on the -jacobi
// driver ("rank:plane:addr:single|double", comma-separated). The
// report then carries a "traps:" line with the event counters.
// -verify-checkpoint checks every section checksum of a snapshot file
// and exits; any flipped bit or truncation is reported with the
// section name and byte offset.
//
// -bench-json runs the repo's performance probes (engine halo overlap,
// decoded-plan cache, trap-detection overhead) through the benchmark
// harness and emits one JSON record per probe; BENCH_PR4.json in the
// repo root is a committed reference run.
//
// -no-kernel pins every node to the reference interpreter instead of
// the specialized execution kernels the plan compiler lowers by
// default. Results are bit-identical either way — the differential
// suite pins that — so the flag exists for A/B timing and for
// isolating a suspected kernel miscompile. -cpuprofile and
// -memprofile write pprof profiles of the host process (the CPU
// profile brackets the whole run; the heap profile is taken on exit).
//
// -metrics-json and -trace-out arm the unified observability layer on
// the run (both -prog and -jacobi): after execution, -metrics-json
// writes the metrics registry (counters, gauges, log₂ histograms) as
// sorted JSON and -trace-out writes a Chrome trace_event file that
// chrome://tracing and https://ui.perfetto.dev load directly — the
// engine's phase timeline on track 0, each rank's dispatch/trap/ECC
// stream on track rank+1, all timestamped in simulated cycles. Either
// flag takes "-" for stdout. Everything recorded derives from
// simulated state, so the artifacts are bit-identical at any -par or
// worker setting.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/hypercube"
	"repro/internal/jacobi"
	"repro/internal/microcode"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

type multi []string

func (m *multi) String() string     { return strings.Join(*m, ",") }
func (m *multi) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and
// writes the report to stdout. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nscsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	subset := fs.Bool("subset", false, "use the simplified architectural subset model")
	progPath := fs.String("prog", "", "microcode program to execute")
	max := fs.Int64("max", 0, "instruction budget (0 = default)")
	par := fs.Int("par", 1, "run the program on this many nodes concurrently (SPMD)")
	jacobiN := fs.Int("jacobi", 0, "solve the n×n model problem on the hypercube driver")
	cubeDim := fs.Int("cube", 0, "hypercube dimension for -jacobi (2^d nodes)")
	topology := fs.String("topology", "hypercube", "interconnect fabric for -jacobi: hypercube, mesh2d or torus2d")
	sweeps := fs.Int("sweeps", 0, "fixed sweep count for -jacobi (0 = run to convergence)")
	faults := fs.String("faults", "", "fault plan for -jacobi (event list or seed@... form)")
	kill := fs.String("kill", "", "permanently kill ranks during -jacobi: sweep:rank[,...]")
	spares := fs.Int("spares", 0, "hot-spare nodes available to replace permanently dead ranks")
	ckEvery := fs.Int("checkpoint-every", 0, "snapshot the -jacobi solve every n sweeps")
	ckPath := fs.String("checkpoint", "", "persist the latest -jacobi snapshot to this file")
	restore := fs.String("restore", "", "resume the -jacobi solve from this snapshot file")
	trapPolicy := fs.String("trap-policy", "", "exception policy: off, halt, retry or quiet")
	watchdog := fs.Int64("watchdog", 0, "sequencer watchdog budget in cycles per instruction (0 = off)")
	eccFaults := fs.String("ecc-faults", "", "seed ECC events for -jacobi: rank:plane:addr:{single|double},...")
	verifyCk := fs.String("verify-checkpoint", "", "verify a snapshot file's section checksums and exit")
	benchJSON := fs.Bool("bench-json", false, "run the performance probes and emit JSON records")
	noKernel := fs.Bool("no-kernel", false, "pin every node to the reference interpreter (disable specialized kernels)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	metricsJSON := fs.String("metrics-json", "", "write the run's metrics registry as JSON to this file (- = stdout)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace_event file for chrome://tracing / Perfetto (- = stdout)")
	var loads, dumps multi
	fs.Var(&loads, "load", "plane:addr:file — preload plane data")
	fs.Var(&dumps, "dump", "plane:addr:count — print plane words after the run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := arch.Default()
	if *subset {
		cfg = arch.Subset()
	}

	// Profiling taps: the CPU profile brackets everything after flag
	// parsing, the heap profile snapshots the retained set on exit.
	// Both capture host-side cost only — the simulation itself is
	// deterministic with or without them.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "nscsim:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "nscsim:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "nscsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "nscsim:", err)
			}
		}()
	}

	if *benchJSON {
		if err := runBenchJSON(stdout, cfg); err != nil {
			fmt.Fprintln(stderr, "nscsim:", err)
			return 1
		}
		return 0
	}

	if *verifyCk != "" {
		ck, err := hypercube.VerifyCheckpointFile(*verifyCk)
		if err != nil {
			fmt.Fprintln(stderr, "nscsim:", err)
			return 1
		}
		fmt.Fprintf(stdout, "checkpoint %s: ok (sweep %d, %d rank(s), grid %d×%d×%d)\n",
			*verifyCk, ck.Sweep, ck.P, ck.N, ck.N, ck.Nz)
		return 0
	}

	pol, err := arch.ParseTrapPolicy(*trapPolicy)
	if err != nil {
		fmt.Fprintln(stderr, "nscsim:", err)
		return 2
	}
	trap := arch.TrapConfig{Policy: pol, WatchdogCycles: *watchdog}

	// Either observability flag arms the unified layer; nil keeps every
	// instrumented path on its zero-cost branch.
	var o *obs.Obs
	if *metricsJSON != "" || *traceOut != "" {
		o = obs.New()
	}

	if *jacobiN > 0 {
		err := runJacobi(stdout, cfg, *jacobiN, *cubeDim, *topology, *sweeps, *faults, *kill, *spares, *ckEvery, *ckPath, *restore, trap, *eccFaults, *noKernel, o)
		if err == nil {
			err = o.WriteFiles(stdout, *metricsJSON, *traceOut)
		}
		if err != nil {
			fmt.Fprintln(stderr, "nscsim:", err)
			return 1
		}
		return 0
	}
	if *eccFaults != "" {
		fmt.Fprintln(stderr, "nscsim: -ecc-faults needs the -jacobi driver")
		return 2
	}

	if *progPath == "" {
		fmt.Fprintln(stderr, "usage: nscsim -prog prog.nscm [-par n] [-load plane:addr:file] [-dump plane:addr:count]")
		fmt.Fprintln(stderr, "       nscsim -jacobi n [-cube d] [-sweeps n] [-faults spec] [-checkpoint-every n] [-restore file]")
		return 2
	}
	if *par < 1 {
		fmt.Fprintf(stderr, "nscsim: -par %d: need at least one node\n", *par)
		return 1
	}
	nodes := make([]*sim.Node, *par)
	for i := range nodes {
		n, err := sim.NewNode(cfg)
		if err != nil {
			fmt.Fprintln(stderr, "nscsim:", err)
			return 1
		}
		n.TrapCfg = trap
		n.KernelOff = *noKernel
		n.Obs = o
		n.ObsID = i
		nodes[i] = n
	}
	f, err := os.Open(*progPath)
	if err != nil {
		fmt.Fprintln(stderr, "nscsim:", err)
		return 1
	}
	prog, err := microcode.ReadProgram(f, nodes[0].F)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "nscsim:", err)
		return 1
	}

	for _, l := range loads {
		plane, addr, path, err := splitRef(l)
		if err != nil {
			fmt.Fprintln(stderr, "nscsim:", err)
			return 1
		}
		vals, err := readFloats(path)
		if err != nil {
			fmt.Fprintln(stderr, "nscsim:", err)
			return 1
		}
		for _, n := range nodes {
			if err := n.WriteWords(plane, addr, vals); err != nil {
				fmt.Fprintln(stderr, "nscsim:", err)
				return 1
			}
		}
	}

	// SPMD dispatch: every node runs the same program against its own
	// state, bounded by the worker pool; the first failure cancels.
	results := make([]sim.RunResult, len(nodes))
	if err := hypercube.ParallelFor(*par, len(nodes), func(i int) error {
		var err error
		results[i], err = nodes[i].Run(prog, *max)
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		return nil
	}); err != nil {
		fmt.Fprintln(stderr, "nscsim:", err)
		return 1
	}

	node, res := nodes[0], results[0]
	st := node.Stats
	if *par > 1 {
		agree := 0
		for i, r := range results {
			if r == res && statsEqual(nodes[i].Stats, st) {
				agree++
			}
		}
		fmt.Fprintf(stdout, "%d nodes ran the program concurrently; %d/%d report identical outcomes\n",
			*par, agree, *par)
	}
	fmt.Fprintf(stdout, "executed %d instruction(s), halted at pc %d\n", res.Executed, res.FinalPC)
	fmt.Fprintf(stdout, "cycles %d (%.3f ms at %.0f MHz)  FLOPs %d  %.1f MFLOPS  interrupts %d  flags %016b\n",
		st.Cycles, st.Seconds(cfg.ClockHz)*1e3, cfg.ClockHz/1e6, st.FLOPs, st.MFLOPS(cfg.ClockHz), len(node.IRQs), node.Flags)
	pc := node.PlanCacheStats()
	fmt.Fprintf(stdout, "plan cache: %d compiled, %d hits, %d misses (decode-once engine)\n",
		pc.Entries, pc.Hits, pc.Misses)
	if trap.Armed() || !res.Traps.Zero() {
		fmt.Fprintf(stdout, "traps: %s\n", res.Traps)
	}

	for _, d := range dumps {
		plane, addr, countStr, err := splitRef(d)
		if err != nil {
			fmt.Fprintln(stderr, "nscsim:", err)
			return 1
		}
		count, err := strconv.Atoi(countStr)
		if err != nil {
			fmt.Fprintf(stderr, "nscsim: dump count: %v\n", err)
			return 1
		}
		vals, err := node.ReadWords(plane, addr, count)
		if err != nil {
			fmt.Fprintln(stderr, "nscsim:", err)
			return 1
		}
		fmt.Fprintf(stdout, "plane %d @%d:", plane, addr)
		for _, v := range vals {
			fmt.Fprintf(stdout, " %g", v)
		}
		fmt.Fprintln(stdout)
	}
	if err := o.WriteFiles(stdout, *metricsJSON, *traceOut); err != nil {
		fmt.Fprintln(stderr, "nscsim:", err)
		return 1
	}
	return 0
}

// runJacobi drives the multi-node solver with the robustness knobs.
func runJacobi(stdout io.Writer, cfg arch.Config, n, dim int, topology string, sweeps int,
	faultSpec, killSpec string, spares, ckEvery int, ckPath, restore string,
	trap arch.TrapConfig, eccSpec string, noKernel bool, o *obs.Obs) error {
	if dim < 0 || dim > 10 {
		return fmt.Errorf("hypercube: dimension %d out of range", dim)
	}
	t, err := topo.New(topology, 1<<uint(dim))
	if err != nil {
		return err
	}
	m, err := hypercube.NewWithTopology(cfg, t)
	if err != nil {
		return err
	}
	m.Workers = -1
	m.Obs = o
	m.StopAfter = sweeps
	m.CheckpointEvery = ckEvery
	m.Trap = trap
	m.NoKernel = noKernel
	if spares > 0 {
		if err := m.AddSpares(spares); err != nil {
			return err
		}
	}
	if eccSpec != "" {
		faults, err := hypercube.ParseRankECCFaults(eccSpec)
		if err != nil {
			return err
		}
		for _, f := range faults {
			if err := m.InjectECC(f.Rank, f.Fault); err != nil {
				return err
			}
		}
	}
	if faultSpec != "" || killSpec != "" {
		plan, err := hypercube.ParseFaultPlan(faultSpec)
		if err != nil {
			return err
		}
		if killSpec != "" {
			events := plan.Events
			for _, tok := range strings.Split(killSpec, ",") {
				sw, rk, ok := strings.Cut(strings.TrimSpace(tok), ":")
				if !ok {
					return fmt.Errorf("nscsim: -kill %q: want sweep:rank[,...]", tok)
				}
				sweep, err := strconv.Atoi(sw)
				if err != nil {
					return fmt.Errorf("nscsim: -kill %q: sweep %q is not an integer", tok, sw)
				}
				rank, err := strconv.Atoi(rk)
				if err != nil {
					return fmt.Errorf("nscsim: -kill %q: rank %q is not an integer", tok, rk)
				}
				events = append(events, hypercube.FaultEvent{
					Sweep: sweep, Phase: hypercube.PhaseDispatch, Rank: rank,
					Kind: hypercube.FaultKillForever,
				})
			}
			if plan, err = hypercube.NewFaultPlan(events...); err != nil {
				return err
			}
		}
		m.Faults = plan
	}
	if ckPath != "" {
		if ckEvery == 0 {
			m.CheckpointEvery = 8
		}
		m.CheckpointSink = func(ck *hypercube.Checkpoint) error {
			return hypercube.SaveCheckpointFile(ckPath, ck)
		}
	}
	if restore != "" {
		ck, err := hypercube.LoadCheckpointFile(restore)
		if err != nil {
			return err
		}
		m.Restore = ck
	}

	// The model problem: n×n planes, two interior planes per node, unit
	// source, homogeneous boundary — the parallel driver's test shape.
	g := jacobi.NewModelProblem(n, 1e-4, 400)
	g.Nz = 2*m.P() + 2
	g.F = make([]float64, g.Cells())
	g.U0 = make([]float64, g.Cells())
	g.Mask = make([]float64, g.Cells())
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.N; j++ {
			for i := 0; i < g.N; i++ {
				idx := g.Index(i, j, k)
				g.F[idx] = 1
				if i > 0 && i < g.N-1 && j > 0 && j < g.N-1 && k > 0 && k < g.Nz-1 {
					g.Mask[idx] = 1
				}
			}
		}
	}
	fmt.Fprintf(stdout, "%s: %d node(s) (%s), grid %d×%d×%d, %d plane(s) per node\n",
		m.Topo.Name(), m.P(), m.Topo.Shape(), g.N, g.N, g.Nz, (g.Nz-2)/m.P())
	res, err := m.SolveJacobi(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "jacobi: %d sweep(s), converged %v, residual %g\n",
		res.Iterations, res.Converged, res.Residual)
	fmt.Fprintf(stdout, "cycles: machine %d, comm %d\n", m.MachineCycles, m.CommCycles)
	fmt.Fprintf(stdout, "plan cache: %d compiled, %d hits, %d misses (decode-once engine)\n",
		res.PlanCache.Entries, res.PlanCache.Hits, res.PlanCache.Misses)
	fmt.Fprintf(stdout, "faults: %s\n", res.Faults)
	fmt.Fprintf(stdout, "traps: %s\n", res.Traps)
	// The recovery line appears only when the degraded-mode machinery is
	// armed, so fault-free reports stay byte-identical to before.
	if m.Faults.HasPermanent() || res.Recovery != (hypercube.RecoveryStats{}) {
		lv := m.Liveness()
		fmt.Fprintf(stdout, "recovery: %s; %d node(s) live, %d spare(s) used, %d free\n",
			res.Recovery, lv.Live, lv.SparesUsed, lv.SparesFree)
	}
	return nil
}

// statsEqual compares Stats field by field, including the per-unit
// utilization slice.
func statsEqual(a, b sim.Stats) bool {
	if a.Instructions != b.Instructions || a.Cycles != b.Cycles ||
		a.FLOPs != b.FLOPs || a.Elements != b.Elements ||
		len(a.FUBusy) != len(b.FUBusy) {
		return false
	}
	for i := range a.FUBusy {
		if a.FUBusy[i] != b.FUBusy[i] {
			return false
		}
	}
	return true
}

// splitRef parses "plane:addr:rest".
func splitRef(s string) (plane int, addr int64, rest string, err error) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return 0, 0, "", fmt.Errorf("malformed reference %q (want plane:addr:x)", s)
	}
	if plane, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, "", fmt.Errorf("plane in %q: %w", s, err)
	}
	if addr, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return 0, 0, "", fmt.Errorf("addr in %q: %w", s, err)
	}
	return plane, addr, parts[2], nil
}

func readFloats(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var vals []float64
	sc := bufio.NewScanner(f)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		vals = append(vals, v)
	}
	return vals, sc.Err()
}
