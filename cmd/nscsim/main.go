// Command nscsim executes assembled NSC microcode on the node
// simulator and reports the sequencer outcome and performance
// statistics.
//
// Usage:
//
//	nscsim [-subset] -prog prog.nscm [-max n] [-par n] [-load plane:addr:file] [-dump plane:addr:count]
//
// -load fills a memory plane from a whitespace-separated list of
// float64 values before the run; -dump prints plane contents after.
// Both flags repeat. -par n runs the program SPMD-style on n simulated
// nodes concurrently through the bounded worker pool (every node gets
// the same program and the same -load data; -dump reads node 0), the
// multi-node shape of the paper's hypercube driver. The report always
// includes the decoded-instruction (plan) cache counters: with the
// decode-once engine, looping programs compile each distinct
// instruction once and replay the compiled pipeline configuration.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/hypercube"
	"repro/internal/microcode"
	"repro/internal/sim"
)

type multi []string

func (m *multi) String() string     { return strings.Join(*m, ",") }
func (m *multi) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	subset := flag.Bool("subset", false, "use the simplified architectural subset model")
	progPath := flag.String("prog", "", "microcode program to execute")
	max := flag.Int64("max", 0, "instruction budget (0 = default)")
	par := flag.Int("par", 1, "run the program on this many nodes concurrently (SPMD)")
	var loads, dumps multi
	flag.Var(&loads, "load", "plane:addr:file — preload plane data")
	flag.Var(&dumps, "dump", "plane:addr:count — print plane words after the run")
	flag.Parse()

	if *progPath == "" {
		fmt.Fprintln(os.Stderr, "usage: nscsim -prog prog.nscm [-par n] [-load plane:addr:file] [-dump plane:addr:count]")
		os.Exit(2)
	}
	if *par < 1 {
		fatal(fmt.Errorf("-par %d: need at least one node", *par))
	}
	cfg := arch.Default()
	if *subset {
		cfg = arch.Subset()
	}
	nodes := make([]*sim.Node, *par)
	for i := range nodes {
		n, err := sim.NewNode(cfg)
		if err != nil {
			fatal(err)
		}
		nodes[i] = n
	}
	f, err := os.Open(*progPath)
	if err != nil {
		fatal(err)
	}
	prog, err := microcode.ReadProgram(f, nodes[0].F)
	f.Close()
	if err != nil {
		fatal(err)
	}

	for _, l := range loads {
		plane, addr, path, err := splitRef(l)
		if err != nil {
			fatal(err)
		}
		vals, err := readFloats(path)
		if err != nil {
			fatal(err)
		}
		for _, n := range nodes {
			if err := n.WriteWords(plane, addr, vals); err != nil {
				fatal(err)
			}
		}
	}

	// SPMD dispatch: every node runs the same program against its own
	// state, bounded by the worker pool; the first failure cancels.
	results := make([]sim.RunResult, len(nodes))
	if err := hypercube.ParallelFor(*par, len(nodes), func(i int) error {
		var err error
		results[i], err = nodes[i].Run(prog, *max)
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		return nil
	}); err != nil {
		fatal(err)
	}

	node, res := nodes[0], results[0]
	st := node.Stats
	if *par > 1 {
		agree := 0
		for i, r := range results {
			if r == res && statsEqual(nodes[i].Stats, st) {
				agree++
			}
		}
		fmt.Printf("%d nodes ran the program concurrently; %d/%d report identical outcomes\n",
			*par, agree, *par)
	}
	fmt.Printf("executed %d instruction(s), halted at pc %d\n", res.Executed, res.FinalPC)
	fmt.Printf("cycles %d (%.3f ms at %.0f MHz)  FLOPs %d  %.1f MFLOPS  interrupts %d  flags %016b\n",
		st.Cycles, st.Seconds(cfg.ClockHz)*1e3, cfg.ClockHz/1e6, st.FLOPs, st.MFLOPS(cfg.ClockHz), len(node.IRQs), node.Flags)
	pc := node.PlanCacheStats()
	fmt.Printf("plan cache: %d compiled, %d hits, %d misses (decode-once engine)\n",
		pc.Entries, pc.Hits, pc.Misses)

	for _, d := range dumps {
		plane, addr, countStr, err := splitRef(d)
		if err != nil {
			fatal(err)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil {
			fatal(fmt.Errorf("dump count: %w", err))
		}
		vals, err := node.ReadWords(plane, addr, count)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("plane %d @%d:", plane, addr)
		for _, v := range vals {
			fmt.Printf(" %g", v)
		}
		fmt.Println()
	}
}

// statsEqual compares Stats field by field, including the per-unit
// utilization slice.
func statsEqual(a, b sim.Stats) bool {
	if a.Instructions != b.Instructions || a.Cycles != b.Cycles ||
		a.FLOPs != b.FLOPs || a.Elements != b.Elements ||
		len(a.FUBusy) != len(b.FUBusy) {
		return false
	}
	for i := range a.FUBusy {
		if a.FUBusy[i] != b.FUBusy[i] {
			return false
		}
	}
	return true
}

// splitRef parses "plane:addr:rest".
func splitRef(s string) (plane int, addr int64, rest string, err error) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return 0, 0, "", fmt.Errorf("malformed reference %q (want plane:addr:x)", s)
	}
	if plane, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, "", fmt.Errorf("plane in %q: %w", s, err)
	}
	if addr, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return 0, 0, "", fmt.Errorf("addr in %q: %w", s, err)
	}
	return plane, addr, parts[2], nil
}

func readFloats(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var vals []float64
	sc := bufio.NewScanner(f)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		vals = append(vals, v)
	}
	return vals, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nscsim:", err)
	os.Exit(1)
}
