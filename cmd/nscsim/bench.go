package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/hypercube"
	"repro/internal/jacobi"
	"repro/internal/multigrid"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/topo"
)

// -bench-json runs the repo's headline performance probes through
// testing.Benchmark and emits machine-readable results, so a CI step
// (or a developer) can track the numbers without the go test bench
// harness. Each record carries ns/op and allocs/op plus
// probe-specific metrics; the BENCH_PR*.json files in the repo root
// are committed reference runs.

type benchRecord struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func record(name string, r testing.BenchmarkResult, metrics map[string]float64) benchRecord {
	return benchRecord{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.AllocsPerOp()),
		Metrics:     metrics,
	}
}

// benchOpts selects the robustness machinery a bench solve arms on top
// of the fault-free baseline.
type benchOpts struct {
	serial     bool
	o          *obs.Obs
	faults     *hypercube.FaultPlan
	spares     int
	buddyEvery int
	topology   string // fabric name; empty means hypercube
}

// benchSolve runs the 8-node Jacobi solve the performance probes time:
// fault-free by default, with the halo schedule, fabric, observability
// layer, fault plan, spare pool and buddy-mirror stride chosen by opts.
func benchSolve(cfg arch.Config, opts benchOpts) (*hypercube.JacobiResult, *hypercube.Machine, error) {
	name := opts.topology
	if name == "" {
		name = "hypercube"
	}
	tp, err := topo.New(name, 8)
	if err != nil {
		return nil, nil, err
	}
	m, err := hypercube.NewWithTopology(cfg, tp)
	if err != nil {
		return nil, nil, err
	}
	m.Workers = runtime.GOMAXPROCS(0)
	m.StopAfter = 12
	m.SerialExchange = opts.serial
	m.Obs = opts.o
	m.Faults = opts.faults
	m.BuddyEvery = opts.buddyEvery
	if opts.spares > 0 {
		if err := m.AddSpares(opts.spares); err != nil {
			return nil, nil, err
		}
	}
	g := jacobi.NewModelProblem(8, 1e-4, 400)
	g.Nz = m.P()*2 + 2
	g.F = make([]float64, g.Cells())
	g.U0 = make([]float64, g.Cells())
	g.Mask = make([]float64, g.Cells())
	for k := 1; k < g.Nz-1; k++ {
		for j := 1; j < g.N-1; j++ {
			for i := 1; i < g.N-1; i++ {
				g.Mask[g.Index(i, j, k)] = 1
			}
		}
	}
	for c := range g.F {
		g.F[c] = 1
	}
	res, err := m.SolveJacobi(g)
	return res, m, err
}

func runBenchJSON(stdout io.Writer, cfg arch.Config) error {
	var out []benchRecord

	// Engine overlap: the fault-free distributed solve under both halo
	// schedules. Simulated clocks must agree; wall time may differ.
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"engine-overlap/overlap", false}, {"engine-overlap/serial", true}} {
		var cycles, comm int64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, m, err := benchSolve(cfg, benchOpts{serial: mode.serial})
				if err != nil {
					b.Fatal(err)
				}
				cycles, comm = m.MachineCycles, m.CommCycles
			}
		})
		out = append(out, record(mode.name, r, map[string]float64{
			"machine_cycles": float64(cycles),
			"comm_cycles":    float64(comm),
		}))
	}

	// Plan cache: the decode-once engine on the warm path — the same
	// compiled pipeline replayed every iteration.
	{
		node, err := sim.NewNode(cfg)
		if err != nil {
			return err
		}
		p := jacobi.NewModelProblem(12, 1e-6, 1)
		doc, _, err := p.BuildDocument(cfg)
		if err != nil {
			return err
		}
		in, _, err := codegen.New(node.Inv).Pipeline(doc, doc.Pipes[0])
		if err != nil {
			return err
		}
		if err := p.Load(node); err != nil {
			return err
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := node.Exec(in); err != nil {
					b.Fatal(err)
				}
			}
		})
		pc := node.PlanCacheStats()
		out = append(out, record("plan-cache/warm-exec", r, map[string]float64{
			"plan_hits":    float64(pc.Hits),
			"plan_misses":  float64(pc.Misses),
			"plan_entries": float64(pc.Entries),
		}))
	}

	// Kernel execution: the same warm compiled pipeline dispatched
	// through the specialized kernel (the default) and pinned to the
	// reference interpreter. The results are bit-identical — only the
	// host time and the allocation count move, and the fast path must
	// sit at zero allocs/op.
	{
		var nsPer [2]float64
		for i, mode := range []struct {
			name string
			off  bool
		}{{"kernel-exec/warm", false}, {"kernel-exec/interp", true}} {
			node, err := sim.NewNode(cfg)
			if err != nil {
				return err
			}
			node.KernelOff = mode.off
			p := jacobi.NewModelProblem(12, 1e-6, 1)
			doc, _, err := p.BuildDocument(cfg)
			if err != nil {
				return err
			}
			in, _, err := codegen.New(node.Inv).Pipeline(doc, doc.Pipes[0])
			if err != nil {
				return err
			}
			if err := p.Load(node); err != nil {
				return err
			}
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := node.Exec(in); err != nil {
						b.Fatal(err)
					}
				}
			})
			nsPer[i] = float64(r.T.Nanoseconds()) / float64(r.N)
			ks := node.KernelStatsOf()
			m := map[string]float64{
				"kernel_fast": float64(ks.Fast),
				"kernel_slow": float64(ks.Slow),
			}
			if mode.off {
				m["slowdown"] = nsPer[1] / nsPer[0]
			}
			out = append(out, record(mode.name, r, m))
		}
	}

	// Trap overhead: the same instruction with exception detection off
	// and armed (no traps fire; simulated cycles are identical).
	for _, mode := range []struct {
		name string
		tc   arch.TrapConfig
	}{
		{"trap-overhead/off", arch.TrapConfig{}},
		{"trap-overhead/armed", arch.TrapConfig{Policy: arch.TrapRetry, WatchdogCycles: 1 << 30}},
	} {
		node, err := sim.NewNode(cfg)
		if err != nil {
			return err
		}
		node.TrapCfg = mode.tc
		p := jacobi.NewModelProblem(12, 1e-6, 1)
		doc, _, err := p.BuildDocument(cfg)
		if err != nil {
			return err
		}
		in, _, err := codegen.New(node.Inv).Pipeline(doc, doc.Pipes[0])
		if err != nil {
			return err
		}
		if err := p.Load(node); err != nil {
			return err
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := node.Exec(in); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, record(mode.name, r, nil))
	}

	// Compile cache: the content-addressed front end on the cold path
	// (cache reset every iteration) versus the warm path (same document
	// replayed from the cache). Mirrors BenchmarkCompileCache.
	{
		inv, err := arch.NewInventory(cfg)
		if err != nil {
			return err
		}
		p := jacobi.NewModelProblem(12, 1e-6, 1)
		doc, _, err := p.BuildDocument(cfg)
		if err != nil {
			return err
		}
		pl := pipeline.New(inv)
		cold := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pl.Cache.Reset()
				if _, err := pl.CompileDocument(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
		pl.Cache.Reset()
		if _, err := pl.CompileDocument(doc); err != nil {
			return err
		}
		warm := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pl.CompileDocument(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
		cs := pl.Cache.Stats()
		out = append(out, record("compile-cache/cold", cold, nil))
		out = append(out, record("compile-cache/warm-hit", warm, map[string]float64{
			"compile_hits":    float64(cs.Hits),
			"compile_misses":  float64(cs.Misses),
			"compile_entries": float64(cs.Entries),
			"speedup":         float64(cold.T.Nanoseconds()) / float64(cold.N) / (float64(warm.T.Nanoseconds()) / float64(warm.N)),
		}))
	}

	// Observability overhead: the same multi-node solve with the
	// unified obs layer disabled and armed. Simulated clocks must be
	// identical — the layer only reads simulated state — so both records
	// carry them for the differential check; wall time is the overhead.
	for _, mode := range []struct {
		name  string
		armed bool
	}{{"obs-overhead/disabled", false}, {"obs-overhead/enabled", true}} {
		var cycles, comm int64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var o *obs.Obs
				if mode.armed {
					o = obs.New()
				}
				_, m, err := benchSolve(cfg, benchOpts{o: o})
				if err != nil {
					b.Fatal(err)
				}
				cycles, comm = m.MachineCycles, m.CommCycles
			}
		})
		out = append(out, record(mode.name, r, map[string]float64{
			"machine_cycles": float64(cycles),
			"comm_cycles":    float64(comm),
		}))
	}

	// Recovery overhead: the degraded-mode machinery priced four ways.
	// The buddy mirror on a clean run must cost zero simulated cycles
	// (host-side bookkeeping; wall time is its only price), while a
	// permanent kill recovered through a spare or a shrinking
	// re-partition reports the simulated cycles the recovery cost over
	// the clean baseline.
	{
		killPlan := func() *hypercube.FaultPlan {
			return hypercube.MustFaultPlan(hypercube.FaultEvent{
				Sweep: 6, Phase: hypercube.PhaseDispatch, Rank: 3,
				Kind: hypercube.FaultKillForever,
			})
		}
		var cleanCycles int64
		for _, mode := range []struct {
			name string
			opts func() benchOpts
		}{
			{"recovery-overhead/clean", func() benchOpts { return benchOpts{} }},
			{"recovery-overhead/buddy-clean", func() benchOpts { return benchOpts{buddyEvery: 1} }},
			{"recovery-overhead/kill-spare", func() benchOpts { return benchOpts{faults: killPlan(), spares: 1} }},
			{"recovery-overhead/kill-shrink", func() benchOpts { return benchOpts{faults: killPlan()} }},
		} {
			var cycles, comm int64
			var rec hypercube.RecoveryStats
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, m, err := benchSolve(cfg, mode.opts())
					if err != nil {
						b.Fatal(err)
					}
					cycles, comm, rec = m.MachineCycles, m.CommCycles, res.Recovery
				}
			})
			if mode.name == "recovery-overhead/clean" {
				cleanCycles = cycles
			}
			out = append(out, record(mode.name, r, map[string]float64{
				"machine_cycles": float64(cycles),
				"comm_cycles":    float64(comm),
				"cycles_lost":    float64(cycles - cleanCycles),
				"recoveries":     float64(rec.Recoveries),
				"resweeps":       float64(rec.ResweptSweeps),
			}))
		}
	}

	// Topology cost model: the same two solves — the 8-node Jacobi slab
	// and the distributed multigrid — over every fabric the topology
	// layer ships. The solutions are bit-identical across fabrics (the
	// differential tests pin that); these records track what each
	// fabric's hop metric charges the simulated clocks for it.
	for _, topology := range topo.Names() {
		var cycles, comm int64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, m, err := benchSolve(cfg, benchOpts{topology: topology})
				if err != nil {
					b.Fatal(err)
				}
				cycles, comm = m.MachineCycles, m.CommCycles
			}
		})
		out = append(out, record("topology-jacobi/"+topology, r, map[string]float64{
			"machine_cycles": float64(cycles),
			"comm_cycles":    float64(comm),
		}))
	}
	for _, topology := range topo.Names() {
		runMG := func() (*multigrid.DistResult, *hypercube.Machine, error) {
			tp, err := topo.New(topology, 8)
			if err != nil {
				return nil, nil, err
			}
			m, err := hypercube.NewWithTopology(cfg, tp)
			if err != nil {
				return nil, nil, err
			}
			m.Workers = runtime.GOMAXPROCS(0)
			d, err := multigrid.NewDistributed(multigrid.DistConfig{
				Fabric:    m.Fabric(),
				Cfg:       cfg,
				N:         17,
				Levels:    2,
				Tol:       1e-6,
				MaxCycles: 100,
				Workers:   m.Workers,
			})
			if err != nil {
				return nil, nil, err
			}
			res, err := d.Run()
			return res, m, err
		}
		var cycles, comm int64
		var vcycles int
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, m, err := runMG()
				if err != nil {
					b.Fatal(err)
				}
				cycles, comm, vcycles = m.MachineCycles, m.CommCycles, res.VCycles
			}
		})
		out = append(out, record("topology-multigrid/"+topology, r, map[string]float64{
			"machine_cycles": float64(cycles),
			"comm_cycles":    float64(comm),
			"v_cycles":       float64(vcycles),
		}))
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	return nil
}
