// Command nscviz renders NSC artifacts: the Figure 1 datapath diagram,
// the Figure 4 icon palette, and saved pipeline documents as ASCII,
// netlist or SVG.
//
// Usage:
//
//	nscviz -datapath
//	nscviz -icons
//	nscviz -in doc.json [-pipe n] [-format ascii|net|svg]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/diagram"
	"repro/internal/render"
)

func main() {
	datapath := flag.Bool("datapath", false, "print the node datapath diagram (Figure 1)")
	icons := flag.Bool("icons", false, "print the icon palette (Figure 4)")
	in := flag.String("in", "", "semantic document (JSON) to render")
	pipe := flag.Int("pipe", 0, "pipeline index to render")
	format := flag.String("format", "ascii", "output format: ascii, net, svg")
	subset := flag.Bool("subset", false, "describe the simplified architectural subset model")
	flag.Parse()

	cfg := arch.Default()
	if *subset {
		cfg = arch.Subset()
	}

	switch {
	case *datapath:
		fmt.Print(render.Datapath(cfg.Nodes(), cfg.MemPlanes, cfg.PlaneBytes>>20,
			cfg.CachePlanes, cfg.CacheBytes>>10, cfg.ShiftDelayUnits,
			cfg.Triplets, cfg.Doublets, cfg.Singlets))
		fmt.Printf("\npeak %g MFLOPS/node, %g GFLOPS and %d GB for the %d-node system\n",
			cfg.PeakFLOPS()/1e6, cfg.PeakSystemFLOPS()/1e9, cfg.TotalMemoryBytes()>>30, cfg.Nodes())
	case *icons:
		fmt.Print(render.IconGallery())
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		doc, err := diagram.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		p, err := doc.Pipe(*pipe)
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "ascii":
			fmt.Print(render.Pipeline(p))
		case "net":
			fmt.Print(render.Netlist(p))
		case "svg":
			fmt.Println(render.SVG(p))
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: nscviz -datapath | -icons | -in doc.json [-pipe n] [-format ascii|net|svg]")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nscviz:", err)
	os.Exit(1)
}
