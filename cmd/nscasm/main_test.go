package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/editor"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// flowDoc is the pipeline test fixture: one two-stage pipeline with a
// counted flow-control loop.
const flowDoc = `
doc flowdoc
var u plane=0 base=0 len=512
var v plane=1 base=0 len=512
place memplane Mu at 1 2 plane=0
place memplane Mv at 40 2 plane=1
place doublet D at 18 1
op D.u0 mul constb=2
op D.u1 add constb=7
connect Mu.rd -> D.u0.a
connect D.u0.o -> D.u1.a
connect D.u1.o -> Mv.wr
dma Mu rd var=u stride=1 count=512
dma Mv wr var=v stride=1 count=512
flow label=top pipe=0 loadctr=4
flow pipe=0 cond=loop ctr=0 branch=top
flow pipe=0 cond=halt
`

// writeDoc scripts the editor and saves the semantic document to a
// temp file, returning its path.
func writeDoc(t *testing.T, script string) string {
	t.Helper()
	inv := arch.MustInventory(arch.Default())
	ed := editor.New(inv, "fixture")
	if _, err := ed.ExecScript(strings.NewReader(script), false); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.Doc.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestDiagJSONClean(t *testing.T) {
	doc := writeDoc(t, flowDoc)
	stdout, stderr, code := runCLI(t, "-in", doc, "-diag-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	checkGolden(t, "diag_clean", stdout)
}

func TestDiagJSONError(t *testing.T) {
	// Drop the write-side DMA program: the memory plane's write port is
	// wired but never drained, a global-constraint violation.
	broken := strings.Replace(flowDoc, "dma Mv wr var=v stride=1 count=512\n", "", 1)
	doc := writeDoc(t, broken)
	stdout, stderr, code := runCLI(t, "-in", doc, "-diag-json")
	if code != 1 {
		t.Fatalf("exit %d (want 1), stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "nscasm:") {
		t.Fatalf("stderr missing error line:\n%s", stderr)
	}
	checkGolden(t, "diag_error", stdout)
}

func TestStatsIncludesPassesAndCache(t *testing.T) {
	doc := writeDoc(t, flowDoc)
	stdout, stderr, code := runCLI(t, "-in", doc, "-stats")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"pipeline 0:", "pass check", "pass codegen", "pass validate", "compile cache: 0 hit(s) 1 miss(es) 1 entrie(s)"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stats output missing %q:\n%s", want, stdout)
		}
	}
}

// TestObsFlags: -metrics-json and -trace-out report the compile's
// pass counters and spans. Pass wall times vary run to run, so this
// checks structure, not bytes: one run per pass counter, a cache miss,
// and one trace span per pass.
func TestObsFlags(t *testing.T) {
	doc := writeDoc(t, flowDoc)
	mPath := filepath.Join(t.TempDir(), "metrics.json")
	tPath := filepath.Join(t.TempDir(), "trace.json")
	_, stderr, code := runCLI(t, "-in", doc, "-metrics-json", mPath, "-trace-out", tPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	raw, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("metrics output is not JSON: %v", err)
	}
	for _, c := range []string{
		"pipeline.pass.check", "pipeline.pass.codegen", "pipeline.pass.validate",
		"pipeline.cache.miss",
	} {
		if metrics.Counters[c] != 1 {
			t.Errorf("counter %s = %d, want 1 (all: %v)", c, metrics.Counters[c], metrics.Counters)
		}
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	raw, err = os.ReadFile(tPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace output is not JSON: %v", err)
	}
	got := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Cat == "pipeline" {
			got[ev.Name] = true
		}
	}
	for _, p := range []string{"check", "codegen", "validate"} {
		if !got[p] {
			t.Errorf("trace missing pass span %q (has %v)", p, got)
		}
	}
}

func TestUsageExit(t *testing.T) {
	_, stderr, code := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage:") {
		t.Fatalf("stderr missing usage:\n%s", stderr)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	doc := writeDoc(t, flowDoc)
	out := filepath.Join(t.TempDir(), "prog.nscm")
	stdout, stderr, code := runCLI(t, "-in", doc, "-dis", "-o", out)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "--- instr 0 ---") || !strings.Contains(stdout, "seq") {
		t.Errorf("disassembly missing instructions:\n%s", stdout)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Errorf("program file not written: %v", err)
	}
	if !strings.Contains(stderr, "instruction(s)") {
		t.Errorf("stderr missing summary:\n%s", stderr)
	}
}
