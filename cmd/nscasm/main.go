// Command nscasm is the microcode generator as a standalone tool: it
// reads a semantic document (nsced's JSON output), runs the thorough
// checker pass, and assembles executable NSC microcode.
//
// Usage:
//
//	nscasm [-subset] -in doc.json [-o prog.nscm] [-dis] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/diagram"
	"repro/internal/microcode"
)

func main() {
	subset := flag.Bool("subset", false, "use the simplified architectural subset model")
	in := flag.String("in", "", "semantic document (JSON) to assemble")
	asm := flag.String("asm", "", "textual microassembler listing to assemble instead")
	out := flag.String("o", "", "write the microcode program to this file")
	dis := flag.Bool("dis", false, "print the disassembly of the generated program")
	stats := flag.Bool("stats", false, "print per-pipeline elaboration statistics")
	flag.Parse()

	if *in == "" && *asm == "" {
		fmt.Fprintln(os.Stderr, "usage: nscasm -in doc.json | -asm listing.txt [-o prog.nscm] [-dis] [-stats]")
		os.Exit(2)
	}
	cfg := arch.Default()
	if *subset {
		cfg = arch.Subset()
	}
	inv, err := arch.NewInventory(cfg)
	if err != nil {
		fatal(err)
	}
	gen := codegen.New(inv)

	var prog *microcode.Program
	if *asm != "" {
		// Hand-written textual microcode: the §6 baseline workflow.
		f, err := os.Open(*asm)
		if err != nil {
			fatal(err)
		}
		prog, err = gen.F.AssembleProgram(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if err := prog.Validate(); err != nil {
			fatal(err)
		}
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		doc, err := diagram.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		var rep *codegen.Report
		prog, rep, err = gen.Document(doc)
		if err != nil {
			fatal(err)
		}
		for _, w := range rep.Warnings {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
		if *stats {
			for _, pi := range rep.Pipes {
				fmt.Printf("pipeline %d: vector=%d fill=%d cycles FUs=%d flops/elem=%d\n",
					pi.Pipe, pi.VectorLen, pi.FillCycles, pi.FUsUsed, pi.FLOPsPerElement)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "nscasm: %d instruction(s), %d bits each (%d fields)\n",
		prog.Len(), gen.F.Bits, gen.F.NumFields())
	if *dis {
		fmt.Print(prog.Disassemble())
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if _, err := prog.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nscasm:", err)
	os.Exit(1)
}
