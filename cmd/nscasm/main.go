// Command nscasm is the microcode generator as a standalone tool: it
// reads a semantic document (nsced's JSON output), runs the compilation
// pipeline (check → codegen → validate), and assembles executable NSC
// microcode.
//
// Usage:
//
//	nscasm [-subset] -in doc.json [-o prog.nscm] [-dis] [-stats] [-diag-json]
//
// -diag-json emits every diagnostic the pipeline produced — stable rule
// code, severity, pipeline, icon, source span, message, fix hint — as a
// JSON object on stdout, for editors and CI to consume. The exit code
// still distinguishes success (0) from refused generation (1).
//
// -stats prints per-pipeline elaboration statistics, per-pass timings
// and the compile-cache counters.
//
// -metrics-json and -trace-out arm the unified observability layer on
// the compilation: pass counters and wall-clock histograms plus one
// span per pass, written after the run as sorted metrics JSON and as a
// Chrome trace_event file (chrome://tracing, Perfetto). Either flag
// takes "-" for stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/arch"
	"repro/internal/diag"
	"repro/internal/diagram"
	"repro/internal/microcode"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nscasm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	subset := fs.Bool("subset", false, "use the simplified architectural subset model")
	in := fs.String("in", "", "semantic document (JSON) to assemble")
	asm := fs.String("asm", "", "textual microassembler listing to assemble instead")
	out := fs.String("o", "", "write the microcode program to this file")
	dis := fs.Bool("dis", false, "print the disassembly of the generated program")
	stats := fs.Bool("stats", false, "print elaboration statistics, pass timings and cache counters")
	diagJSON := fs.Bool("diag-json", false, "emit pipeline diagnostics as JSON on stdout")
	metricsJSON := fs.String("metrics-json", "", "write the compile's metrics registry as JSON to this file (- = stdout)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace_event file of the passes (- = stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *in == "" && *asm == "" {
		fmt.Fprintln(stderr, "usage: nscasm -in doc.json | -asm listing.txt [-o prog.nscm] [-dis] [-stats] [-diag-json]")
		return 2
	}
	cfg := arch.Default()
	if *subset {
		cfg = arch.Subset()
	}
	inv, err := arch.NewInventory(cfg)
	if err != nil {
		return fatal(stderr, err)
	}
	pl := pipeline.New(inv)
	var o *obs.Obs
	if *metricsJSON != "" || *traceOut != "" {
		o = obs.New()
		pl.Obs = o
	}

	var prog *microcode.Program
	if *asm != "" {
		// Hand-written textual microcode: the §6 baseline workflow.
		f, err := os.Open(*asm)
		if err != nil {
			return fatal(stderr, err)
		}
		prog, err = pl.Gen.F.AssembleProgram(f)
		f.Close()
		if err != nil {
			return fatal(stderr, err)
		}
		if err := prog.Validate(); err != nil {
			return fatal(stderr, err)
		}
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return fatal(stderr, err)
		}
		doc, err := diagram.Load(f)
		f.Close()
		if err != nil {
			return fatal(stderr, err)
		}
		res, cerr := pl.CompileDocument(doc)
		if *diagJSON {
			if err := writeDiagJSON(stdout, res.Diags); err != nil {
				return fatal(stderr, err)
			}
		}
		if cerr != nil {
			fmt.Fprintln(stderr, "nscasm:", cerr)
			return 1
		}
		for _, w := range res.Rep.Warnings {
			fmt.Fprintln(stderr, "warning:", w)
		}
		if *stats {
			for _, pi := range res.Rep.Pipes {
				fmt.Fprintf(stdout, "pipeline %d: vector=%d fill=%d cycles FUs=%d flops/elem=%d\n",
					pi.Pipe, pi.VectorLen, pi.FillCycles, pi.FUsUsed, pi.FLOPsPerElement)
			}
			for _, pt := range res.Passes {
				fmt.Fprintf(stdout, "pass %-14s %v\n", pt.Name, pt.Duration)
			}
			cs := pl.Cache.Stats()
			fmt.Fprintf(stdout, "compile cache: %d hit(s) %d miss(es) %d entrie(s)\n",
				cs.Hits, cs.Misses, cs.Entries)
		}
		prog = res.Prog
	}
	fmt.Fprintf(stderr, "nscasm: %d instruction(s), %d bits each (%d fields)\n",
		prog.Len(), pl.Gen.F.Bits, pl.Gen.F.NumFields())
	if *dis {
		fmt.Fprint(stdout, prog.Disassemble())
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fatal(stderr, err)
		}
		if _, err := prog.WriteTo(f); err != nil {
			return fatal(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fatal(stderr, err)
		}
	}
	if err := o.WriteFiles(stdout, *metricsJSON, *traceOut); err != nil {
		return fatal(stderr, err)
	}
	return 0
}

// writeDiagJSON renders the machine-readable diagnostics report: a
// stable envelope around the typed records ("code", "severity",
// "pipe", "icon", optional "span" and "hint").
func writeDiagJSON(w io.Writer, ds diag.Diagnostics) error {
	if ds == nil {
		ds = diag.Diagnostics{}
	}
	report := struct {
		Diagnostics diag.Diagnostics `json:"diagnostics"`
		Errors      int              `json:"errors"`
		Warnings    int              `json:"warnings"`
	}{ds, len(ds.Errors()), len(ds) - len(ds.Errors())}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "nscasm:", err)
	return 1
}
