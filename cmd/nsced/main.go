// Command nsced is the NSC visual programming editor: it runs editor
// command scripts (the scriptable form of the paper's Sun-3 mouse
// interface), shows the Figure 5 display window, checks the diagrams,
// and saves the semantic data structures.
//
// Usage:
//
//	nsced [-subset] [-script file] [-o doc.json] [-window] [-render n] [-svg n] [-check]
//
// With no -script, commands are read from standard input, echoing the
// message strip after each line (an interactive session).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/render"
)

func main() {
	subset := flag.Bool("subset", false, "use the simplified architectural subset model")
	script := flag.String("script", "", "editor command script to execute")
	out := flag.String("o", "", "write the semantic data structures (JSON) to this file")
	window := flag.Bool("window", false, "print the display window (Figure 5) after editing")
	renderN := flag.Int("render", -1, "render pipeline N as ASCII after editing")
	svgN := flag.Int("svg", -1, "render pipeline N as SVG to stdout after editing")
	check := flag.Bool("check", false, "run the full checker and print diagnostics")
	gallery := flag.Bool("icons", false, "print the icon palette (Figure 4) and exit")
	flag.Parse()

	if *gallery {
		fmt.Print(render.IconGallery())
		return
	}

	cfg := arch.Default()
	if *subset {
		cfg = arch.Subset()
	}
	env, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}

	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		events, err := env.Ed.ExecScript(f, false)
		f.Close()
		for _, ev := range events {
			fmt.Println(ev)
		}
		if err != nil {
			fatal(err)
		}
	} else if stdinIsPipe() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			msg, err := env.Ed.Exec(sc.Text())
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			if msg != "" {
				fmt.Println(msg)
			}
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	}

	if *check {
		diags := env.Check()
		if len(diags) == 0 {
			fmt.Println("check: clean")
		}
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *window {
		fmt.Print(env.Window())
	}
	if *renderN >= 0 {
		art, err := env.RenderPipeline(*renderN)
		if err != nil {
			fatal(err)
		}
		fmt.Print(art)
	}
	if *svgN >= 0 {
		svg, err := env.RenderSVG(*svgN)
		if err != nil {
			fatal(err)
		}
		fmt.Println(svg)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := env.SaveDocument(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "semantic data structures written to %s\n", *out)
	}
}

func stdinIsPipe() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice == 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nsced:", err)
	os.Exit(1)
}
