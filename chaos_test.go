// Chaos tests: fixed-seed randomized fault plans — transient kills,
// link corruption, stalls — with a permanent node loss appended, run
// against both solver engines. The contract under test is the repo's
// strongest robustness claim: whatever the fault plan does, recovery
// restores the exact clean trajectory, so the degraded run's residual
// series and assembled field match the fault-free run bit for bit. CI
// runs these under the race detector alongside the differential tests.
package repro_test

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/hypercube"
	"repro/internal/jacobi"
	"repro/internal/multigrid"
	"repro/internal/topo"
)

// chaosSeeds are the fixed seeds CI replays; each drives a different
// randomized plan, and seed parity alternates the recovery path
// between a hot spare and a shrinking re-partition.
var chaosSeeds = []int64{1, 2, 3, 4}

// chaosProblem is the 8×8×(2p+2) slab fixture shared with the
// differential harness.
func chaosProblem(p int) *jacobi.Problem {
	g := jacobi.NewModelProblem(8, 1e-4, 400)
	g.Nz = p*2 + 2
	g.F = make([]float64, g.Cells())
	g.U0 = make([]float64, g.Cells())
	g.Mask = make([]float64, g.Cells())
	for k := 1; k < g.Nz-1; k++ {
		for j := 1; j < g.N-1; j++ {
			for i := 1; i < g.N-1; i++ {
				g.Mask[g.Index(i, j, k)] = 1
			}
		}
	}
	for c := range g.F {
		g.F[c] = 1
	}
	return g
}

// chaosPlan draws a seeded transient plan over sweeps [0,permSweep)
// and appends a permanent kill at permSweep, so the kill never
// collides with a generated event.
func chaosPlan(t *testing.T, seed int64, permSweep, ranks, n int) *hypercube.FaultPlan {
	t.Helper()
	base := hypercube.RandomChaosPlan(seed, permSweep, ranks, n)
	events := append(append([]hypercube.FaultEvent(nil), base.Events...), hypercube.FaultEvent{
		Sweep: permSweep, Phase: hypercube.PhaseDispatch,
		Rank: int(seed) % ranks, Kind: hypercube.FaultKillForever,
	})
	plan, err := hypercube.NewFaultPlan(events...)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return plan
}

func chaosCfg() arch.Config {
	cfg := arch.Default()
	cfg.HypercubeDim = 3
	return cfg
}

// TestChaosJacobi runs the distributed Jacobi solve through each
// seeded plan with sweep-boundary checkpoints armed and asserts the
// degraded run reproduces the clean run bit for bit.
func TestChaosJacobi(t *testing.T) {
	run := func(plan *hypercube.FaultPlan, spares int) (*hypercube.JacobiResult, *hypercube.Machine) {
		m, err := hypercube.New(chaosCfg(), 3)
		if err != nil {
			t.Fatal(err)
		}
		m.Workers = runtime.GOMAXPROCS(0)
		m.StopAfter = 10
		m.CheckpointEvery = 2
		m.Faults = plan
		if spares > 0 {
			if err := m.AddSpares(spares); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.SolveJacobi(chaosProblem(m.P()))
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}
	clean, _ := run(nil, 0)
	for _, seed := range chaosSeeds {
		spares := int(seed) % 2
		res, m := run(chaosPlan(t, seed, 6, 8, 4), spares)
		if !reflect.DeepEqual(res.ResidualSeries, clean.ResidualSeries) {
			t.Errorf("seed %d: residual series diverged from clean run", seed)
		}
		if !reflect.DeepEqual(res.U, clean.U) {
			t.Errorf("seed %d: assembled field diverged from clean run", seed)
		}
		if res.Recovery.Recoveries != 1 || res.Recovery.DeadRanks != 1 {
			t.Errorf("seed %d: recovery stats %s, want one recovery of one dead rank", seed, res.Recovery.String())
		}
		if got := res.Recovery.SpareActivations; got != int64(spares) {
			t.Errorf("seed %d: %d spare activations, want %d", seed, got, spares)
		}
		lv := m.Liveness()
		if want := 8 - 1 + spares; lv.Live != want {
			t.Errorf("seed %d: %d nodes live after recovery, want %d", seed, lv.Live, want)
		}
	}
}

// TestChaosTopologies replays a seeded chaos plan — transient faults
// plus a permanent kill, absorbed by a hot spare on one seed and a
// shrinking re-partition on the other — over every fabric the topology
// layer ships. The clean hypercube run is the single reference: every
// fabric's degraded run must reproduce its residual series and
// assembled field bit for bit, at one worker and at four.
func TestChaosTopologies(t *testing.T) {
	run := func(topology string, workers int, plan *hypercube.FaultPlan, spares int) *hypercube.JacobiResult {
		tp, err := topo.New(topology, 8)
		if err != nil {
			t.Fatal(err)
		}
		m, err := hypercube.NewWithTopology(chaosCfg(), tp)
		if err != nil {
			t.Fatal(err)
		}
		m.Workers = workers
		m.StopAfter = 10
		m.CheckpointEvery = 2
		m.Faults = plan
		if spares > 0 {
			if err := m.AddSpares(spares); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.SolveJacobi(chaosProblem(m.P()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run("hypercube", 1, nil, 0)
	for _, topology := range []string{"hypercube", "mesh2d", "torus2d"} {
		topology := topology
		t.Run(topology, func(t *testing.T) {
			t.Parallel()
			for _, seed := range chaosSeeds[:2] {
				spares := int(seed) % 2
				for _, workers := range []int{1, 4} {
					res := run(topology, workers, chaosPlan(t, seed, 6, 8, 4), spares)
					if !reflect.DeepEqual(res.ResidualSeries, clean.ResidualSeries) {
						t.Errorf("seed %d workers %d: residual series diverged from clean hypercube run", seed, workers)
					}
					if !reflect.DeepEqual(res.U, clean.U) {
						t.Errorf("seed %d workers %d: assembled field diverged from clean hypercube run", seed, workers)
					}
					if res.Recovery.Recoveries != 1 || res.Recovery.DeadRanks != 1 {
						t.Errorf("seed %d workers %d: recovery stats %s, want one recovery of one dead rank",
							seed, workers, res.Recovery.String())
					}
					if got := res.Recovery.SpareActivations; got != int64(spares) {
						t.Errorf("seed %d workers %d: %d spare activations, want %d", seed, workers, got, spares)
					}
				}
			}
		})
	}
}

// TestChaosMultigrid runs the distributed multigrid engine through
// seeded transient chaos plus a permanent mid-cycle kill and asserts
// the V-cycle trajectory and solution survive unchanged.
func TestChaosMultigrid(t *testing.T) {
	run := func(plan *hypercube.FaultPlan, spares int) *multigrid.DistResult {
		m, err := hypercube.New(chaosCfg(), 2)
		if err != nil {
			t.Fatal(err)
		}
		m.Workers = runtime.GOMAXPROCS(0)
		if spares > 0 {
			if err := m.AddSpares(spares); err != nil {
				t.Fatal(err)
			}
		}
		d, err := multigrid.NewDistributed(multigrid.DistConfig{
			Fabric:    m.Fabric(),
			Cfg:       chaosCfg(),
			N:         17,
			Levels:    2,
			Tol:       1e-6,
			MaxCycles: 100,
			Workers:   m.Workers,
			Faults:    plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil, 0)
	for _, seed := range chaosSeeds {
		spares := int(seed) % 2
		res := run(chaosPlan(t, seed, 30, 4, 4), spares)
		if res.VCycles != clean.VCycles {
			t.Errorf("seed %d: %d V-cycles, clean run took %d", seed, res.VCycles, clean.VCycles)
		}
		if !reflect.DeepEqual(res.ResidualSeries, clean.ResidualSeries) {
			t.Errorf("seed %d: residual series diverged from clean run", seed)
		}
		if !reflect.DeepEqual(res.U, clean.U) {
			t.Errorf("seed %d: solution diverged from clean run", seed)
		}
		if res.Recovery.Recoveries != 1 || res.Recovery.DeadRanks != 1 {
			t.Errorf("seed %d: recovery stats %s, want one recovery of one dead rank", seed, res.Recovery.String())
		}
		if res.Faults.Injected == 0 {
			t.Errorf("seed %d: no transient faults injected — chaos plan was a no-op", seed)
		}
	}
}
