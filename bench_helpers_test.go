package repro_test

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/diagram"
	"repro/internal/editor"
	"repro/internal/microcode"
	"repro/internal/sim"
)

// reportOnce prints an experiment's table a single time per process,
// so `go test -bench` output carries the paper-style rows regardless
// of how many timing iterations the harness chooses.
var reportGuards sync.Map

func reportOnce(key, text string) {
	if _, loaded := reportGuards.LoadOrStore(key, true); !loaded {
		fmt.Fprintf(os.Stdout, "\n==== %s ====\n%s\n", key, text)
	}
}

// buildPeakPipeline programs every functional unit of the node into
// one chain — 32 FLOPs per element — streaming a long vector, the
// configuration that realizes the §2 peak rate claim.
func buildPeakPipeline(cfg arch.Config, count int64) (*microcode.Instr, error) {
	inv, err := arch.NewInventory(cfg)
	if err != nil {
		return nil, err
	}
	ed := editor.New(inv, "peak")
	if err := ed.Declare(diagram.VarDecl{Name: "u", Plane: 0, Base: 0, Len: count}); err != nil {
		return nil, err
	}
	if err := ed.Declare(diagram.VarDecl{Name: "v", Plane: 1, Base: 0, Len: count}); err != nil {
		return nil, err
	}
	if _, err := ed.Exec(fmt.Sprintf("place memplane Mu at 1 1 plane=0")); err != nil {
		return nil, err
	}
	if _, err := ed.Exec(fmt.Sprintf("place memplane Mv at 160 1 plane=1")); err != nil {
		return nil, err
	}
	if _, err := ed.Exec(fmt.Sprintf("dma Mu rd var=u stride=1 count=%d", count)); err != nil {
		return nil, err
	}
	if _, err := ed.Exec(fmt.Sprintf("dma Mv wr var=v stride=1 count=%d", count)); err != nil {
		return nil, err
	}

	type slotRef struct {
		name string
		slot int
	}
	var slots []slotRef
	place := func(kind string, n, units int) error {
		for i := 0; ; i++ {
			if len(slots) >= 0 && i >= n {
				return nil
			}
			name := fmt.Sprintf("%c%d", kind[0]-32, i)
			if _, err := ed.Exec(fmt.Sprintf("place %s %s at %d %d", kind, name, 14+(len(slots)%8)*16, 1+(len(slots)/8)*6)); err != nil {
				return err
			}
			for s := 0; s < units; s++ {
				slots = append(slots, slotRef{name: name, slot: s})
			}
		}
	}
	if err := place("triplet", cfg.Triplets, 3); err != nil {
		return nil, err
	}
	if err := place("doublet", cfg.Doublets, 2); err != nil {
		return nil, err
	}
	if err := place("singlet", cfg.Singlets, 1); err != nil {
		return nil, err
	}

	prev := "Mu.rd"
	for _, sr := range slots {
		if _, err := ed.Exec(fmt.Sprintf("op %s.u%d add constb=1", sr.name, sr.slot)); err != nil {
			return nil, err
		}
		if _, err := ed.Exec(fmt.Sprintf("connect %s -> %s.u%d.a", prev, sr.name, sr.slot)); err != nil {
			return nil, err
		}
		prev = fmt.Sprintf("%s.u%d.o", sr.name, sr.slot)
	}
	if _, err := ed.Exec(fmt.Sprintf("connect %s -> Mv.wr", prev)); err != nil {
		return nil, err
	}
	gen := codegen.New(inv)
	in, _, err := gen.Pipeline(ed.Doc, ed.Current())
	return in, err
}

// freshNodeWithRamp returns a node with plane 0 filled by a ramp.
func freshNodeWithRamp(cfg arch.Config, count int64) (*sim.Node, error) {
	node, err := sim.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	data := make([]float64, count)
	for i := range data {
		data[i] = float64(i)
	}
	return node, node.WriteWords(0, 0, data)
}
