package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the four CLI executables once per test binary.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"nsced", "nscasm", "nscsim", "nscviz"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

// TestCLIWorkflow drives the full toolchain through the real binaries:
// edit a script with nsced, assemble with nscasm, execute with nscsim,
// render with nscviz.
func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	work := t.TempDir()

	script := filepath.Join(work, "prog.nse")
	if err := os.WriteFile(script, []byte(`
doc cli
var u plane=0 base=0 len=64
var v plane=1 base=0 len=64
place memplane Mu at 1 2 plane=0
place memplane Mv at 40 2 plane=1
place singlet S at 20 2
op S.u0 mul constb=3
connect Mu.rd -> S.u0.a
connect S.u0.o -> Mv.wr
dma Mu rd var=u stride=1 count=8
dma Mv wr var=v stride=1 count=8
`), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = work
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// nsced: script → semantic JSON + checks + render.
	out := run("nsced", "-script", script, "-o", "prog.json", "-check", "-render", "0")
	if !strings.Contains(out, "check: clean") {
		t.Errorf("nsced check output: %q", out)
	}
	if !strings.Contains(out, "mul") {
		t.Errorf("nsced render missing op: %q", out)
	}

	// nscasm: JSON → binary microcode + disassembly.
	out = run("nscasm", "-in", "prog.json", "-o", "prog.nscm", "-dis", "-stats")
	if !strings.Contains(out, "mul") || !strings.Contains(out, "pipeline 0") {
		t.Errorf("nscasm output: %q", out)
	}

	// nscsim: load data, run, dump.
	data := filepath.Join(work, "u.txt")
	if err := os.WriteFile(data, []byte("1 2 3 4 5 6 7 8"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run("nscsim", "-prog", "prog.nscm", "-load", "0:0:"+data, "-dump", "1:0:8")
	for _, want := range []string{"executed 1 instruction", "plane 1 @0: 3 6 9 12 15 18 21 24"} {
		if !strings.Contains(out, want) {
			t.Errorf("nscsim output missing %q:\n%s", want, out)
		}
	}

	// nscviz: datapath, icons, document rendering in all formats.
	out = run("nscviz", "-datapath")
	if !strings.Contains(out, "FLONET") {
		t.Errorf("nscviz datapath: %q", out)
	}
	out = run("nscviz", "-icons")
	if !strings.Contains(out, "triplet") {
		t.Errorf("nscviz icons: %q", out)
	}
	out = run("nscviz", "-in", "prog.json", "-format", "net")
	if !strings.Contains(out, "S.u0 = mul(Mu.rd, 3)") {
		t.Errorf("nscviz netlist: %q", out)
	}
	out = run("nscviz", "-in", "prog.json", "-format", "svg")
	if !strings.HasPrefix(out, "<svg") {
		t.Errorf("nscviz svg: %q", out[:40])
	}

	// Round trip through the textual microassembler: disassemble with
	// nscasm -dis, reassemble with nscasm -asm, outputs must execute
	// identically.
	dis := run("nscasm", "-in", "prog.json", "-dis")
	// Strip the stderr banner if it interleaved; keep instr sections.
	idx := strings.Index(dis, "--- instr")
	if idx < 0 {
		t.Fatalf("no listing in: %q", dis)
	}
	listing := filepath.Join(work, "prog.asm")
	if err := os.WriteFile(listing, []byte(dis[idx:]), 0o644); err != nil {
		t.Fatal(err)
	}
	run("nscasm", "-asm", listing, "-o", "prog2.nscm")
	out = run("nscsim", "-prog", "prog2.nscm", "-load", "0:0:"+data, "-dump", "1:0:8")
	if !strings.Contains(out, "plane 1 @0: 3 6 9 12 15 18 21 24") {
		t.Errorf("reassembled program differs:\n%s", out)
	}

	// Error paths exit non-zero.
	for _, bad := range [][]string{
		{"nscasm", "-in", "missing.json"},
		{"nscsim", "-prog", "missing.nscm"},
		{"nscviz", "-in", "missing.json"},
	} {
		cmd := exec.Command(filepath.Join(bin, bad[0]), bad[1:]...)
		cmd.Dir = work
		if err := cmd.Run(); err == nil {
			t.Errorf("%v should fail", bad)
		}
	}
}

// TestCLIExamplesRun executes every example main end to end.
func TestCLIExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs examples")
	}
	cases := []struct {
		dir  string
		args []string
		want string
	}{
		{"quickstart", nil, "all 1024 results correct"},
		{"jacobi3d", []string{"-n", "6", "-tol", "1e-3"}, "bit-identical"},
		{"hypercube", []string{"-n", "6", "-slab", "2", "-dim", "1"}, "eff%"},
		{"editor-session", nil, "REJECTED"},
		{"multigrid", []string{"-n", "9", "-levels", "2"}, "bit-identical"},
		{"compiler", []string{"-n", "8"}, "match the host mirror"},
		{"wave", []string{"-n", "6", "-steps", "12"}, "bit-identical"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			args := append([]string{"run", "./examples/" + tc.dir}, tc.args...)
			cmd := exec.Command("go", args...)
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("example %s output missing %q", tc.dir, tc.want)
			}
		})
	}
}
