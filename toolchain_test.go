package repro_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/microcode"
	"repro/internal/sim"
)

// TestToolchainRoundTrip exercises the nsced → nscasm → nscsim data
// path at the library level: an editor session saved as semantic JSON,
// reloaded, assembled to a binary microcode file, reloaded, and
// executed — the workflow the three CLI tools expose.
func TestToolchainRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := arch.Default()

	// Stage 1 (nsced): edit and save the semantic data structures.
	env := core.MustNew(cfg)
	script := `
doc toolchain
var u plane=0 base=0 len=512
var v plane=1 base=0 len=512
place memplane Mu at 1 2 plane=0
place memplane Mv at 40 2 plane=1
place doublet D at 18 1
op D.u0 mul constb=2
op D.u1 add constb=7
connect Mu.rd -> D.u0.a
connect D.u0.o -> D.u1.a
connect D.u1.o -> Mv.wr
dma Mu rd var=u stride=1 count=512
dma Mv wr var=v stride=1 count=512
`
	if _, err := env.Script(script); err != nil {
		t.Fatal(err)
	}
	docPath := filepath.Join(dir, "prog.json")
	f, err := os.Create(docPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.SaveDocument(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Stage 2 (nscasm): load the JSON, check, generate, save binary.
	df, err := os.Open(docPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := diagram.Load(df)
	df.Close()
	if err != nil {
		t.Fatal(err)
	}
	gen := codegen.New(arch.MustInventory(cfg))
	prog, _, err := gen.Document(doc)
	if err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "prog.nscm")
	bf, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.WriteTo(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	// Stage 3 (nscsim): load the binary onto a fresh node and run.
	node := sim.MustNode(cfg)
	pf, err := os.Open(binPath)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := microcode.ReadProgram(pf, node.F)
	pf.Close()
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, 512)
	for i := range u {
		u[i] = float64(i)
	}
	if err := node.WriteWords(0, 0, u); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(loaded, 10); err != nil {
		t.Fatal(err)
	}
	v, err := node.ReadWords(1, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if v[i] != 2*u[i]+7 {
			t.Fatalf("v[%d] = %g, want %g", i, v[i], 2*u[i]+7)
		}
	}

	// The saved JSON is readable semantic data: spot-check content.
	raw, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "toolchain"`, `"kind": 1`, `"var": "u"`} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("semantic JSON missing %q", want)
		}
	}
	// And the disassembly names everything a reviewer would look for.
	dis := loaded.Disassemble()
	for _, want := range []string{"mul", "add", "M0.rd", "M1.wr", "const"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

// TestDocumentedArchitectureClaims pins the README/DESIGN numbers.
func TestDocumentedArchitectureClaims(t *testing.T) {
	cfg := arch.Default()
	f := microcode.MustFormat(cfg)
	if f.Bits != 5292 {
		t.Errorf("instruction width %d bits; README/EXPERIMENTS say 5292 — update the docs", f.Bits)
	}
	if n := f.NumFields(); n != 682 {
		t.Errorf("field count %d; docs say 682", n)
	}
}
